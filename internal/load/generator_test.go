package load

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{Rate: 0, Duration: time.Second}, func(int) error { return nil }); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(Options{Rate: 10, Duration: 0}, func(int) error { return nil }); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestRunCountsOfferedErrorsAndTimeline(t *testing.T) {
	res, err := Run(Options{Rate: 100, Duration: 500 * time.Millisecond, Workers: 8},
		func(i int) error {
			if i%10 == 3 {
				return errors.New("boom")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 50 {
		t.Fatalf("offered = %d, want 50", res.Offered)
	}
	if res.Completed+res.Errors != res.Offered {
		t.Fatalf("completed %d + errors %d != offered %d", res.Completed, res.Errors, res.Offered)
	}
	if res.Errors != 5 {
		t.Fatalf("errors = %d, want 5", res.Errors)
	}
	if got := res.ErrorRate(); got != 0.1 {
		t.Fatalf("error rate = %g, want 0.1", got)
	}
	var offered, ok, bad int
	for _, s := range res.Timeline {
		offered += s.Offered
		ok += s.OK
		bad += s.Errors
	}
	if offered != 50 || ok != 45 || bad != 5 {
		t.Fatalf("timeline sums offered=%d ok=%d errors=%d, want 50/45/5", offered, ok, bad)
	}
	// Errors are still excluded from the latency histograms.
	if res.Hist.Count() != 45 {
		t.Fatalf("hist count = %d, want 45 (errors excluded)", res.Hist.Count())
	}
}

func TestRunWarmupExcludedFromHistogram(t *testing.T) {
	res, err := Run(Options{Rate: 100, Duration: 500 * time.Millisecond, Warmup: 250 * time.Millisecond, Workers: 8},
		func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 50 {
		t.Fatalf("completed = %d, want 50 (warmup requests still run)", res.Completed)
	}
	// Requests scheduled in [0,250ms) — half the schedule — are unmeasured.
	if res.Hist.Count() != 25 {
		t.Fatalf("hist count = %d, want 25 (warmup half excluded)", res.Hist.Count())
	}
}

// TestCoordinatedOmissionCorrection is the property test for the whole
// point of this package: when the system under test stalls, a naive
// send-time measurement must under-report the tail, and the corrected
// scheduled-time measurement must not.
//
// The service here is an RWMutex read; a writer grabs the lock partway
// through the run and holds it ~400ms. Only Workers(=4) requests are
// physically blocked inside the service (those are the only ones the
// naive histogram sees stall), but every request *scheduled* during the
// outage queues behind them — the corrected histogram charges the
// queueing delay to all of them, exactly as a real user population would
// experience it.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	var lock sync.RWMutex
	const (
		rate  = 200.0
		dur   = 2 * time.Second
		stall = 400 * time.Millisecond
	)
	stallDone := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		lock.Lock()
		time.Sleep(stall)
		lock.Unlock()
		close(stallDone)
	}()
	res, err := Run(Options{Rate: rate, Duration: dur, Workers: 4}, func(int) error {
		lock.RLock()
		lock.RUnlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-stallDone
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}

	corrected := res.Hist.Quantile(0.99)
	naive := res.NaiveHist.Quantile(0.99)
	t.Logf("p99 corrected=%v naive=%v (max corrected=%v naive=%v)",
		corrected, naive, res.Hist.Max(), res.NaiveHist.Max())

	// ~80 of 400 requests are scheduled inside the 400ms outage, so the
	// corrected p99 must land deep in the stall (threshold generous for a
	// loaded single-core machine).
	if corrected < 100*time.Millisecond {
		t.Fatalf("corrected p99 = %v, want >= 100ms: stall not charged to queued requests", corrected)
	}
	// Only 4 of 400 requests stall from the naive view — below the p99
	// rank — so naive p99 stays small. This is the under-reporting.
	if naive*4 > corrected {
		t.Fatalf("naive p99 %v not meaningfully below corrected %v: coordinated omission not demonstrated",
			naive, corrected)
	}
}

// TestRampFindsCeiling bounds a service at 4 concurrent requests x 10ms
// each (400/s capacity) and checks the geometric search brackets it.
func TestRampFindsCeiling(t *testing.T) {
	sem := make(chan struct{}, 4)
	do := func(int) error {
		sem <- struct{}{}
		time.Sleep(10 * time.Millisecond)
		<-sem
		return nil
	}
	ramp, err := Ramp(RampOptions{
		Start:        50,
		Factor:       4,
		MaxRate:      800,
		StepDuration: 400 * time.Millisecond,
		StepWarmup:   50 * time.Millisecond,
		Workers:      16,
	}, do)
	if err != nil {
		t.Fatal(err)
	}
	if !ramp.Saturated {
		t.Fatalf("ramp never saturated: %+v", ramp.Steps)
	}
	if ramp.Ceiling != 200 {
		t.Fatalf("ceiling = %g, want 200 (last sustained step)", ramp.Ceiling)
	}
	last := ramp.Steps[len(ramp.Steps)-1]
	if last.Sustained || last.FailReason == "" {
		t.Fatalf("final step should have failed with a reason: %+v", last)
	}
	if last.Rate != 800 {
		t.Fatalf("final step rate = %g, want 800", last.Rate)
	}
}

func TestReportRoundTripAndCompare(t *testing.T) {
	res, err := Run(Options{Rate: 200, Duration: 250 * time.Millisecond, Workers: 8},
		func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("unit", "inproc", 200, res)
	rep.Metrics = map[string]float64{"priorityDeliveryRate": 1}
	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if !IsReport(path) {
		t.Fatal("written report not recognized")
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Latency != rep.Latency || back.Offered != rep.Offered {
		t.Fatalf("round trip mutated report: %+v vs %+v", back, rep)
	}
	// Rebuilt histogram preserves quantiles to bucket resolution (the
	// exact max degrades to its bucket bound, so allow ~1.6% upward).
	h := FromSnapshot(back.Histogram)
	got, want := ms(h.Quantile(0.99)), rep.Latency.P99
	if got < want || got > want*1.05 {
		t.Fatalf("histogram p99 after round trip = %g, want [%g, %g]", got, want, want*1.05)
	}

	// Same report compares clean.
	if table, err := CompareReports(back, rep, 0, 0); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, table)
	}
	// A 2x p99 regression gates.
	worse := *rep
	worse.Latency.P99 = rep.Latency.P99*2 + 10
	if _, err := CompareReports(rep, &worse, 0.25, 0.20); err == nil {
		t.Fatal("2x p99 regression passed the gate")
	}
	// A ceiling collapse gates.
	a, b := *rep, *rep
	a.CeilingRPS, b.CeilingRPS = 400, 100
	if _, err := CompareReports(&a, &b, 0.25, 0.20); err == nil {
		t.Fatal("ceiling collapse passed the gate")
	}

	// Non-report JSON is rejected.
	bad := t.TempDir() + "/bench.json"
	if err := os.WriteFile(bad, []byte(`{"Action":"output"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if IsReport(bad) {
		t.Fatal("bench capture misidentified as load report")
	}
}

func TestFlakyProxyForwardsAndDrops(t *testing.T) {
	// Echo server as the upstream.
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }() //nolint:errcheck
		}
	}()

	p, err := NewFlakyProxy(up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping\n" {
		t.Fatalf("echo through proxy: %q err=%v", buf, err)
	}

	if n := p.DropAll(); n == 0 {
		t.Fatal("DropAll severed nothing")
	}
	c.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded after DropAll")
	}

	// The proxy accepts fresh connections after an outage.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("back\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, buf); err != nil || string(buf) != "back\n" {
		t.Fatalf("echo after recovery: %q err=%v", buf, err)
	}
	if p.Drops() == 0 {
		t.Fatal("drop counter not advanced")
	}
}

// TestRunTracedExemplarsInReport drives RunTraced against a target where
// exactly one request is dramatically slow, and checks the report names
// that request's TraceID as the max exemplar — the "p999 is a concrete
// trace to dump" pipeline, end to end.
func TestRunTracedExemplarsInReport(t *testing.T) {
	const slowIdx = 17
	res, err := RunTraced(Options{Rate: 100, Duration: 500 * time.Millisecond, Workers: 8},
		func(i int) (uint64, error) {
			if i == slowIdx {
				time.Sleep(80 * time.Millisecond)
			}
			return uint64(i + 1), nil // trace 0 means untraced; offset past it
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Offered {
		t.Fatalf("completed %d != offered %d", res.Completed, res.Offered)
	}
	if got := res.Hist.MaxExemplar(); got != slowIdx+1 {
		t.Fatalf("max exemplar = %#x, want trace %#x", got, slowIdx+1)
	}
	rep := NewReport("unit", "loopback", 100, res)
	if rep.Exemplars["max"] != fmt.Sprintf("%016x", slowIdx+1) {
		t.Fatalf("report max exemplar = %q", rep.Exemplars["max"])
	}
	if rep.Exemplars["p999"] == "" {
		t.Fatal("report missing p999 exemplar")
	}
}
