package load

import (
	"fmt"
	"time"

	"pervasivegrid/internal/obs"
)

// Step-ramp throughput search: run fixed-rate open-loop steps at
// increasing offered rates until a step fails its sustain criteria; the
// ceiling is the highest rate that sustained. Open-loop steps make this
// honest — an overloaded step shows up as queueing latency and errors,
// not as the generator politely slowing down.

// RampOptions shapes the search.
type RampOptions struct {
	// Start is the first step's offered rate in req/s (required).
	Start float64
	// Factor multiplies the rate between steps (default 2; must be >1).
	// A geometric ramp reaches a ceiling in O(log) steps and the final
	// bracket [ceiling, ceiling*Factor) bounds the answer.
	Factor float64
	// MaxRate stops the search (default 64x Start).
	MaxRate float64
	// StepDuration is each step's measured span (default 5s).
	StepDuration time.Duration
	// StepWarmup is excluded from each step's histogram (default 500ms).
	StepWarmup time.Duration
	// SustainFraction is the minimum achieved/offered throughput for a
	// step to count as sustained (default 0.9).
	SustainFraction float64
	// MaxErrorRate fails a step when exceeded (default 0.01).
	MaxErrorRate float64
	// MaxP99 fails a step whose p99 exceeds it (0 = no latency SLA).
	MaxP99 time.Duration
	// Generator knobs shared by every step.
	Workers int
	Clock   obs.Clock
}

// StepResult summarises one ramp step.
type StepResult struct {
	Rate       float64       `json:"rateRPS"`
	Achieved   float64       `json:"achievedRPS"`
	ErrorRate  float64       `json:"errorRate"`
	P50        time.Duration `json:"p50Ns"`
	P99        time.Duration `json:"p99Ns"`
	P999       time.Duration `json:"p999Ns"`
	Sustained  bool          `json:"sustained"`
	FailReason string        `json:"failReason,omitempty"`
}

// RampResult is the search outcome.
type RampResult struct {
	// Steps lists every step run, in rate order.
	Steps []StepResult
	// Ceiling is the highest sustained offered rate (0 when even the
	// first step failed).
	Ceiling float64
	// Saturated reports whether the search actually found a failing step
	// (false means it ran out of MaxRate headroom still sustaining).
	Saturated bool
}

// Ramp runs the search, driving do exactly like Run does per step.
func Ramp(opts RampOptions, do func(i int) error) (*RampResult, error) {
	if opts.Start <= 0 {
		return nil, fmt.Errorf("load: ramp start rate must be positive, got %g", opts.Start)
	}
	if opts.Factor <= 1 {
		opts.Factor = 2
	}
	if opts.MaxRate <= 0 {
		opts.MaxRate = opts.Start * 64
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 5 * time.Second
	}
	if opts.StepWarmup < 0 {
		opts.StepWarmup = 0
	} else if opts.StepWarmup == 0 {
		opts.StepWarmup = 500 * time.Millisecond
	}
	if opts.SustainFraction <= 0 || opts.SustainFraction > 1 {
		opts.SustainFraction = 0.9
	}
	if opts.MaxErrorRate <= 0 {
		opts.MaxErrorRate = 0.01
	}

	out := &RampResult{}
	for rate := opts.Start; rate <= opts.MaxRate; rate *= opts.Factor {
		genOpts := Options{
			Rate:     rate,
			Duration: opts.StepDuration,
			Warmup:   opts.StepWarmup,
			Workers:  opts.Workers,
		}
		if opts.Clock != nil {
			genOpts.Clock = opts.Clock
		}
		res, err := Run(genOpts, do)
		if err != nil {
			return nil, err
		}
		step := StepResult{
			Rate:      rate,
			Achieved:  res.Throughput,
			ErrorRate: res.ErrorRate(),
			P50:       res.Hist.Quantile(0.50),
			P99:       res.Hist.Quantile(0.99),
			P999:      res.Hist.Quantile(0.999),
			Sustained: true,
		}
		switch {
		case step.Achieved < rate*opts.SustainFraction:
			step.Sustained = false
			step.FailReason = fmt.Sprintf("achieved %.0f/s below %.0f%% of offered %.0f/s",
				step.Achieved, opts.SustainFraction*100, rate)
		case step.ErrorRate > opts.MaxErrorRate:
			step.Sustained = false
			step.FailReason = fmt.Sprintf("error rate %.2f%% above %.2f%%",
				step.ErrorRate*100, opts.MaxErrorRate*100)
		case opts.MaxP99 > 0 && step.P99 > opts.MaxP99:
			step.Sustained = false
			step.FailReason = fmt.Sprintf("p99 %v above SLA %v", step.P99, opts.MaxP99)
		}
		out.Steps = append(out.Steps, step)
		if !step.Sustained {
			out.Saturated = true
			break
		}
		out.Ceiling = rate
	}
	return out, nil
}
