package load

import (
	"fmt"
	"io"
	"net"
	"sync"

	"pervasivegrid/internal/supervise"
)

// FlakyProxy is a TCP forwarder placed between a client and a gateway so
// scenarios can sever links honestly: the runtime's DialReconnect layer
// has no test hook for "the network died", but killing every proxied
// connection produces exactly the read error a dead link would. The
// flood-evacuation scenario uses it to force handheld redials mid-run.
type FlakyProxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	drops  int
	closed bool
}

// NewFlakyProxy listens on a fresh loopback port and forwards every
// connection to target until DropAll or Close.
func NewFlakyProxy(target string) (*FlakyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load: proxy listen: %w", err)
	}
	p := &FlakyProxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	supervise.Spawn("load-proxy-accept", p.acceptLoop)
	return p, nil
}

// Addr is the address clients should dial instead of the real target.
func (p *FlakyProxy) Addr() string { return p.ln.Addr().String() }

// Drops reports how many connections DropAll has severed so far.
func (p *FlakyProxy) Drops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

// DropAll severs every live proxied connection, simulating a link
// outage. New connections are accepted again immediately, so a
// reconnecting client recovers as soon as it redials.
func (p *FlakyProxy) DropAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns)
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
	p.drops += n
	return n
}

// Close stops accepting and severs everything.
func (p *FlakyProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.DropAll()
	return err
}

func (p *FlakyProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(upstream)
		supervise.Spawn("load-proxy-pipe", func() { p.pipe(client, upstream) })
		supervise.Spawn("load-proxy-pipe", func() { p.pipe(upstream, client) })
	}
}

func (p *FlakyProxy) track(c net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

// pipe copies one direction; when either side dies it closes both so the
// peer's read unblocks, and forgets the pair.
func (p *FlakyProxy) pipe(dst, src net.Conn) {
	io.Copy(dst, src) //nolint:errcheck // a severed link is the point
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}
