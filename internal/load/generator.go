package load

import (
	"fmt"
	"sync"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// Open-loop generation. A closed-loop client (send, wait, send again)
// slows down exactly when the system under test slows down, so its
// latency numbers silently drop the requests that *would* have been sent
// during a stall — the coordinated-omission trap. This generator is
// open-loop: request i has a fixed scheduled send time start + i/rate,
// the schedule never waits for the system, and latency is measured from
// the scheduled time. A worker stuck behind a stall therefore charges the
// whole queueing delay to every request that queued behind it, which is
// what a real user population would experience. The naive (send-time)
// measurement is recorded alongside so tests and docs can demonstrate
// exactly how much it under-reports.

// Options shapes one open-loop run.
type Options struct {
	// Rate is the offered arrival rate in requests per second (required).
	Rate float64
	// Duration bounds the schedule; Offered = floor(Rate * Duration).
	Duration time.Duration
	// Warmup excludes the first span of the schedule from the histograms
	// (connections warming, caches filling). Warmup requests still run.
	Warmup time.Duration
	// Workers is the sending pool size (default 32). The pool bounds
	// concurrency, not the schedule: when every worker is stuck, the
	// backlog queues and the queued time is measured.
	Workers int
	// Clock is the time source (default the wall clock). Tests inject
	// obs.FakeClock to run schedules without waiting.
	Clock obs.Clock
}

func (o Options) withDefaults() (Options, error) {
	if o.Rate <= 0 {
		return o, fmt.Errorf("load: rate must be positive, got %g", o.Rate)
	}
	if o.Duration <= 0 {
		return o, fmt.Errorf("load: duration must be positive, got %v", o.Duration)
	}
	if o.Workers <= 0 {
		o.Workers = 32
	}
	if o.Clock == nil {
		o.Clock = obs.Real
	}
	return o, nil
}

// Second is one second of the run's timeline, indexed from the schedule
// start. The chaos suite reads these to bound an error spike's duration
// and to compare pre-/post-recovery throughput.
type Second struct {
	// Offered counts requests scheduled into this second.
	Offered int `json:"offered"`
	// OK counts requests scheduled into this second that completed
	// without error (whenever they actually finished).
	OK int `json:"ok"`
	// Errors counts requests scheduled into this second that failed.
	Errors int `json:"errors"`
}

// Result is one open-loop run's measurement.
type Result struct {
	// Offered is the scheduled request count (rate x duration).
	Offered int
	// Completed counts requests that returned without error.
	Completed int
	// Errors counts failed requests.
	Errors int
	// Elapsed spans schedule start to last completion.
	Elapsed time.Duration
	// Throughput is completed requests per second of Elapsed.
	Throughput float64
	// Hist is the coordinated-omission-safe latency histogram
	// (completion minus *scheduled* send time), excluding warmup.
	Hist *Histogram
	// NaiveHist measures the same requests from their actual send time —
	// the number a closed-loop harness would report. Kept only to
	// demonstrate the under-reporting; never gate on it.
	NaiveHist *Histogram
	// Timeline buckets the run per scheduled second.
	Timeline []Second
}

// request is one scheduled slot handed to the worker pool.
type request struct {
	i         int
	scheduled time.Time
}

// Run drives do open-loop under opts. do receives the request index and
// returns the request's error; it must be safe for concurrent calls.
func Run(opts Options, do func(i int) error) (*Result, error) {
	return RunTraced(opts, func(i int) (uint64, error) { return 0, do(i) })
}

// RunTraced is Run for instrumented targets: do additionally returns
// the TraceID of the conversation it ran, which becomes the latency
// histogram's exemplar for that request's bucket — the report's p999
// then names a concrete trace to dump.
func RunTraced(opts Options, do func(i int) (uint64, error)) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	offered := int(opts.Rate * opts.Duration.Seconds())
	if offered < 1 {
		offered = 1
	}
	clk := opts.Clock
	res := &Result{
		Offered:   offered,
		Hist:      NewHistogram(),
		NaiveHist: NewHistogram(),
		Timeline:  make([]Second, int(opts.Duration.Seconds())+1),
	}
	interval := time.Duration(float64(time.Second) / opts.Rate)
	start := clk.Now()

	// The queue holds the entire schedule, so the dispatcher can never be
	// blocked by slow workers — blocking the dispatcher would re-create
	// the coordinated omission this harness exists to avoid.
	queue := make(chan request, offered)

	var mu sync.Mutex // guards Timeline and the completion counters
	var lastDone time.Time
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		supervise.Spawn("load-worker", func() {
			defer wg.Done()
			for req := range queue {
				sendStart := clk.Now()
				trace, err := do(req.i)
				end := clk.Now()
				sec := int(req.scheduled.Sub(start) / time.Second)
				measured := req.scheduled.Sub(start) >= opts.Warmup
				mu.Lock()
				if end.After(lastDone) {
					lastDone = end
				}
				if sec >= 0 && sec < len(res.Timeline) {
					if err != nil {
						res.Timeline[sec].Errors++
					} else {
						res.Timeline[sec].OK++
					}
				}
				if err != nil {
					res.Errors++
				} else {
					res.Completed++
				}
				mu.Unlock()
				if measured && err == nil {
					res.Hist.RecordTraced(end.Sub(req.scheduled), trace)
					res.NaiveHist.Record(end.Sub(sendStart))
				}
			}
		})
	}

	// Dispatch on schedule: sleep to each slot, never past it because a
	// worker is busy.
	for i := 0; i < offered; i++ {
		at := start.Add(time.Duration(i) * interval)
		if wait := at.Sub(clk.Now()); wait > 0 {
			clk.Sleep(wait)
		}
		sec := int(at.Sub(start) / time.Second)
		if sec >= 0 && sec < len(res.Timeline) {
			mu.Lock()
			res.Timeline[sec].Offered++
			mu.Unlock()
		}
		queue <- request{i: i, scheduled: at}
	}
	close(queue)
	wg.Wait()

	res.Elapsed = lastDone.Sub(start)
	if res.Elapsed < opts.Duration {
		res.Elapsed = opts.Duration
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Completed) / s
	}
	// Trim the trailing spill second when nothing landed in it.
	if n := len(res.Timeline); n > 0 && res.Timeline[n-1] == (Second{}) {
		res.Timeline = res.Timeline[:n-1]
	}
	return res, nil
}

// ErrorRate reports the failed fraction of offered load.
func (r *Result) ErrorRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Offered)
}
