package load

import (
	"testing"
	"time"
)

// Scenario tests run the real TCP stacks at rates a loaded single-core CI
// box sustains comfortably; short mode trims durations, not coverage.

func TestStormScenarioPriorityLaneSurvivesOverload(t *testing.T) {
	dur := 6 * time.Second
	if testing.Short() {
		dur = 3 * time.Second
	}
	rep, err := RunStorm(StormOptions{
		Duration:     dur,
		BulkRate:     800, // ~2x the service ceiling below
		ServiceTime:  2500 * time.Microsecond,
		PriorityRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm: priority p99=%gms delivery=%.4f sheds=%g delivered=%g",
		rep.Latency.P99, rep.Metrics["priorityDeliveryRate"],
		rep.Metrics["baseShed"], rep.Metrics["baseDelivered"])
	if err := CheckStormReport(rep, 0.99); err != nil {
		t.Fatal(err)
	}
	// The storm must actually overload the base: bulk above the service
	// ceiling with a tiny mailbox has to shed.
	if rep.Metrics["baseShed"] == 0 {
		t.Fatalf("no sheds under 2x overload: %+v", rep.Metrics)
	}
	if rep.Schema != ReportSchema || rep.Scenario != "sensor-storm" {
		t.Fatalf("report mislabelled: %q %q", rep.Schema, rep.Scenario)
	}
}

func TestStormScenarioLowRateSmokeIsClean(t *testing.T) {
	// The make load-smoke contract: at low rate nothing sheds and the
	// priority lane is spotless.
	rep, err := RunStorm(StormOptions{
		Duration:     2 * time.Second,
		BulkRate:     100,
		ServiceTime:  200 * time.Microsecond,
		PriorityRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStormReport(rep, 0.99); err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["baseShed"] != 0 {
		t.Fatalf("sheds at 10%% load: %+v", rep.Metrics)
	}
}

func TestFloodScenarioSurvivesLinkBlips(t *testing.T) {
	dur := 8 * time.Second
	blips := 2
	if testing.Short() {
		dur, blips = 4*time.Second, 1
	}
	rep, err := RunFlood(FloodOptions{
		Duration:      dur,
		Blips:         blips,
		QueryRate:     30,
		RegisterRate:  20,
		HeartbeatRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flood: query p99=%gms delivery=%.4f reconnects=%g replayed=%g live=%g",
		rep.Latency.P99, rep.Metrics["queryDeliveryRate"],
		rep.Metrics["reconnects"], rep.Metrics["replayed"], rep.Metrics["liveShelters"])
	// Outages are retried through, so delivery stays high even with the
	// link cut mid-run; thresholds leave room for requests caught at the
	// exact moment of a blip on a slow box.
	if err := CheckFloodReport(rep, 0.95, 0.95); err != nil {
		t.Fatal(err)
	}
}
