// Package load is the city-scale load harness: an open-loop,
// coordinated-omission-safe traffic generator (latency is measured from
// each request's *scheduled* send time, never from when a stalled worker
// finally got to send it), HDR-style latency histograms with p50/p99/p999,
// a step-ramp search for the sustained-throughput ceiling, and the two
// flagship disaster scenarios (sensor-storm, flood evacuation) that
// saturate the overload and recovery machinery the runtime grew in
// earlier PRs. Results serialize to JSON so pgridbench -compare can gate
// regressions on tail latency, not just ns/op.
package load

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values bucket
// by octave with 64 linear sub-buckets per octave, bounding relative
// error to ~1.6% while keeping the whole structure a few KB. Durations
// are recorded in nanoseconds. The zero value is not usable; construct
// with NewHistogram. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []int64
	// traces holds one exemplar TraceID per bucket (the last recorded;
	// lazily allocated the first time a traced value arrives), so a
	// percentile can be answered with a *concrete request* to go look
	// at: "p999 is 80ms — here is a trace that took that long".
	traces   []uint64
	total    int64
	max      int64
	maxTrace uint64
	sum      int64
}

// subBuckets is the linear resolution per octave (power of two).
const subBuckets = 64

// maxBucketIndex covers every int64 nanosecond value.
var maxBucketIndex = bucketIndex(1<<63 - 1)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, maxBucketIndex+1)}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 7 // u>>exp lands in [64,128)
	return subBuckets + exp*subBuckets + int(u>>uint(exp)) - subBuckets
}

// bucketHigh returns the largest value a bucket holds — quantiles report
// this bound, so "p99 = X" reads as "99% of requests finished in ≤ X".
func bucketHigh(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := (idx - subBuckets) / subBuckets
	m := uint64((idx-subBuckets)%subBuckets + subBuckets)
	return int64(m<<uint(exp) + 1<<uint(exp) - 1)
}

// Record adds one latency observation. Negative durations clamp to zero
// (a scheduled time in the future can produce them when a request
// completes before its own schedule slot under a fake clock).
func (h *Histogram) Record(d time.Duration) { h.RecordTraced(d, 0) }

// RecordTraced adds one latency observation carrying the TraceID of the
// request that produced it (0 = untraced). The trace becomes the
// bucket's exemplar: Exemplar(q) later answers "which request was that
// slow?" for any percentile.
func (h *Histogram) RecordTraced(d time.Duration, trace uint64) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	idx := bucketIndex(v)
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
		h.maxTrace = trace
	}
	if trace != 0 {
		if h.traces == nil {
			h.traces = make([]uint64, len(h.counts))
		}
		h.traces[idx] = trace
	}
	h.mu.Unlock()
}

// Count reports recorded observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Max reports the largest recorded value.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Mean reports the average recorded value.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile reports the latency bound below which fraction q of the
// recorded values fall (q in [0,1]; q=0.99 is p99). An empty histogram
// reports 0. The exact recorded max is returned for the top bucket so
// p100 never overstates.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	idx := h.quantileIdxLocked(q)
	if idx < 0 {
		return time.Duration(h.max)
	}
	hi := bucketHigh(idx)
	if hi > h.max {
		hi = h.max
	}
	return time.Duration(hi)
}

// quantileIdxLocked finds the bucket the q-quantile lands in (-1 when
// the cumulative walk falls through, i.e. q points past the last
// occupied bucket). Caller holds h.mu.
func (h *Histogram) quantileIdxLocked(q float64) int {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return i
		}
	}
	return -1
}

// Exemplar returns the TraceID of a request observed at (or just above)
// the q-quantile latency, or 0 when no traced request is nearby. The
// walk prefers the quantile's own bucket, then the slower tail — an
// exemplar for p999 should never be a *faster* request than the p999.
func (h *Histogram) Exemplar(q float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || h.traces == nil {
		return 0
	}
	idx := h.quantileIdxLocked(q)
	if idx < 0 {
		return h.maxTrace
	}
	for i := idx; i < len(h.traces); i++ {
		if h.traces[i] != 0 {
			return h.traces[i]
		}
	}
	return h.maxTrace
}

// MaxExemplar returns the TraceID of the slowest recorded request
// (0 when the max was untraced).
func (h *Histogram) MaxExemplar() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxTrace
}

// Merge folds other into h (exemplars included; other's win per bucket).
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := make([]int64, len(other.counts))
	copy(counts, other.counts)
	var traces []uint64
	if other.traces != nil {
		traces = make([]uint64, len(other.traces))
		copy(traces, other.traces)
	}
	total, max, sum, maxTrace := other.total, other.max, other.sum, other.maxTrace
	other.mu.Unlock()

	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	for i, t := range traces {
		if t != 0 {
			if h.traces == nil {
				h.traces = make([]uint64, len(h.counts))
			}
			h.traces[i] = t
		}
	}
	h.total += total
	h.sum += sum
	if max > h.max {
		h.max = max
		h.maxTrace = maxTrace
	}
	h.mu.Unlock()
}

// HistBucket is one non-empty bucket in a serialized histogram.
type HistBucket struct {
	// High is the inclusive upper latency bound of the bucket in
	// nanoseconds.
	High int64 `json:"highNs"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
	// Trace is the bucket's exemplar TraceID in hex (absent when no
	// traced request landed here).
	Trace string `json:"trace,omitempty"`
}

// Snapshot exports the non-empty buckets, oldest bound first.
func (h *Histogram) Snapshot() []HistBucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistBucket
	for i, c := range h.counts {
		if c > 0 {
			b := HistBucket{High: bucketHigh(i), Count: c}
			if h.traces != nil && h.traces[i] != 0 {
				b.Trace = fmt.Sprintf("%016x", h.traces[i])
			}
			out = append(out, b)
		}
	}
	return out
}

// FromSnapshot rebuilds a histogram from serialized buckets (quantiles
// and exemplars survive; the exact max degrades to its bucket bound).
func FromSnapshot(buckets []HistBucket) *Histogram {
	h := NewHistogram()
	for _, b := range buckets {
		idx := bucketIndex(b.High)
		h.counts[idx] += b.Count
		h.total += b.Count
		h.sum += b.High * b.Count
		var trace uint64
		if b.Trace != "" {
			trace, _ = strconv.ParseUint(b.Trace, 16, 64)
		}
		if trace != 0 {
			if h.traces == nil {
				h.traces = make([]uint64, len(h.counts))
			}
			h.traces[idx] = trace
		}
		if b.High > h.max {
			h.max = b.High
			h.maxTrace = trace
		}
	}
	return h
}
