// Package load is the city-scale load harness: an open-loop,
// coordinated-omission-safe traffic generator (latency is measured from
// each request's *scheduled* send time, never from when a stalled worker
// finally got to send it), HDR-style latency histograms with p50/p99/p999,
// a step-ramp search for the sustained-throughput ceiling, and the two
// flagship disaster scenarios (sensor-storm, flood evacuation) that
// saturate the overload and recovery machinery the runtime grew in
// earlier PRs. Results serialize to JSON so pgridbench -compare can gate
// regressions on tail latency, not just ns/op.
package load

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values bucket
// by octave with 64 linear sub-buckets per octave, bounding relative
// error to ~1.6% while keeping the whole structure a few KB. Durations
// are recorded in nanoseconds. The zero value is not usable; construct
// with NewHistogram. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []int64
	total  int64
	max    int64
	sum    int64
}

// subBuckets is the linear resolution per octave (power of two).
const subBuckets = 64

// maxBucketIndex covers every int64 nanosecond value.
var maxBucketIndex = bucketIndex(1<<63 - 1)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, maxBucketIndex+1)}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 7 // u>>exp lands in [64,128)
	return subBuckets + exp*subBuckets + int(u>>uint(exp)) - subBuckets
}

// bucketHigh returns the largest value a bucket holds — quantiles report
// this bound, so "p99 = X" reads as "99% of requests finished in ≤ X".
func bucketHigh(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := (idx - subBuckets) / subBuckets
	m := uint64((idx-subBuckets)%subBuckets + subBuckets)
	return int64(m<<uint(exp) + 1<<uint(exp) - 1)
}

// Record adds one latency observation. Negative durations clamp to zero
// (a scheduled time in the future can produce them when a request
// completes before its own schedule slot under a fake clock).
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count reports recorded observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Max reports the largest recorded value.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Mean reports the average recorded value.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile reports the latency bound below which fraction q of the
// recorded values fall (q in [0,1]; q=0.99 is p99). An empty histogram
// reports 0. The exact recorded max is returned for the top bucket so
// p100 never overstates.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			hi := bucketHigh(i)
			if hi > h.max {
				hi = h.max
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := make([]int64, len(other.counts))
	copy(counts, other.counts)
	total, max, sum := other.total, other.max, other.sum
	other.mu.Unlock()

	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.total += total
	h.sum += sum
	if max > h.max {
		h.max = max
	}
	h.mu.Unlock()
}

// HistBucket is one non-empty bucket in a serialized histogram.
type HistBucket struct {
	// High is the inclusive upper latency bound of the bucket in
	// nanoseconds.
	High int64 `json:"highNs"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// Snapshot exports the non-empty buckets, oldest bound first.
func (h *Histogram) Snapshot() []HistBucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistBucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, HistBucket{High: bucketHigh(i), Count: c})
		}
	}
	return out
}

// FromSnapshot rebuilds a histogram from serialized buckets (quantiles
// survive; the exact max degrades to its bucket bound).
func FromSnapshot(buckets []HistBucket) *Histogram {
	h := NewHistogram()
	for _, b := range buckets {
		idx := bucketIndex(b.High)
		h.counts[idx] += b.Count
		h.total += b.Count
		h.sum += b.High * b.Count
		if b.High > h.max {
			h.max = b.High
		}
	}
	return h
}
