package load_test

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/leak"
	"pervasivegrid/internal/load"
)

// kill -9 under load: a real echo-node process takes open-loop traffic
// from this process over TCP, is SIGKILLed mid-run, and is restarted a
// second later on the same address. Because the generator is open-loop
// and attributes every request to its *scheduled* second, the load
// report localises the outage precisely: the error spike must be bounded
// to the kill window, and once the node is back the measured throughput
// must recover to ≥90% of the offered rate. A closed-loop harness could
// not make either claim — it would simply stop sending while the node
// was dead.

const (
	chaosEcho     = agent.ID("chaos-echo")
	chaosOntology = "x-load-chaos"
	chaosEnvFlag  = "PGRID_LOAD_CHAOS_NODE"
	chaosEnvAddr  = "PGRID_LOAD_CHAOS_ADDR"
)

// TestLoadChaosNodeProcess is not a test: it is the echo-node body this
// binary is re-execed into (the subprocess idiom from the durable chaos
// suite). It serves until killed.
func TestLoadChaosNodeProcess(t *testing.T) {
	if os.Getenv(chaosEnvFlag) != "1" {
		t.Skip("helper process for TestChaosKillNineUnderLoad")
	}
	p := agent.NewPlatform("chaos-node")
	err := p.Register(chaosEcho, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		if reply, err := env.Reply("inform", "ok"); err == nil {
			_ = ctx.Send(reply)
		}
	}), agent.Attributes{}, nil)
	if err != nil {
		fmt.Printf("FAIL register: %v\n", err)
		return
	}
	if _, err := agent.ListenAndServe(p, os.Getenv(chaosEnvAddr)); err != nil {
		fmt.Printf("FAIL listen: %v\n", err)
		return
	}
	fmt.Println("READY")
	select {} // hold the node up until the parent kills it
}

// startChaosNode re-execs the test binary as the echo node and waits for
// its READY line.
func startChaosNode(t *testing.T, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestLoadChaosNodeProcess$", "-test.v")
	cmd.Env = append(os.Environ(), chaosEnvFlag+"=1", chaosEnvAddr+"="+addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "READY" {
				close(ready)
				break
			}
		}
		for sc.Scan() { //nolint:revive // drain so the child never blocks on stdout
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("chaos node never became READY")
	}
	return cmd
}

func reap(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
	_ = cmd.Wait()
}

func TestChaosKillNineUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	defer leak.Check(t)()

	// Reserve an address the node can reuse across both lives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	node := startChaosNode(t, addr)
	defer reap(node)

	client := agent.NewPlatform("chaos-load-client")
	defer client.Close()
	link := agent.DialReconnect(client, addr, agent.ReconnectOptions{
		MaxBuffer: 4096,
		BaseDelay: 20 * time.Millisecond,
		MaxDelay:  200 * time.Millisecond,
	})
	defer link.Close()

	const (
		rate       = 120.0
		dur        = 8 * time.Second
		killAt     = 2500 * time.Millisecond
		restartAt  = 1200 * time.Millisecond // after the kill
		callBudget = 500 * time.Millisecond  // short on purpose: outage requests must fail, not ride retries
	)

	// Kill and restart on a fixed schedule while the load runs.
	restarted := make(chan *exec.Cmd, 1)
	go func() {
		time.Sleep(killAt)
		if node.Process != nil {
			_ = node.Process.Kill() // SIGKILL: no goodbye, no flush
		}
		_ = node.Wait()
		time.Sleep(restartAt)
		restarted <- startChaosNode(t, addr)
	}()

	res, err := load.Run(load.Options{Rate: rate, Duration: dur, Workers: 256},
		func(int) error {
			_, err := agent.Call(client, chaosEcho, "request", chaosOntology, "ping", callBudget)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	defer reap(<-restarted)

	t.Logf("chaos timeline (offered/ok/errors per scheduled second): %+v", res.Timeline)

	// The kill must be visible: a node dying under open-loop load cannot
	// hide.
	if res.Errors == 0 {
		t.Fatal("kill -9 left no trace in the load report")
	}

	// The error spike must be bounded to the outage window. The node is
	// dead from ~2.5s to ~3.7s plus reconnect backoff; seconds 0-1 and
	// the final seconds must be clean.
	killSec := int(killAt / time.Second)                  // 2
	recoverSec := int((killAt+restartAt)/time.Second) + 2 // 5: restart + reconnect + drain slack
	for sec, s := range res.Timeline {
		if sec < killSec && s.Errors > 0 {
			t.Errorf("second %d (before the kill) saw %d errors", sec, s.Errors)
		}
		if sec > recoverSec && s.Errors > 0 {
			t.Errorf("second %d (after recovery) saw %d errors", sec, s.Errors)
		}
	}

	// Post-recovery throughput: the last two full seconds must complete
	// ≥90% of their offered load.
	var offered, ok int
	for _, s := range res.Timeline[len(res.Timeline)-2:] {
		offered += s.Offered
		ok += s.OK
	}
	if offered == 0 {
		t.Fatal("empty tail timeline")
	}
	if frac := float64(ok) / float64(offered); frac < 0.9 {
		t.Errorf("post-recovery throughput %.2f below 0.9 (%d/%d in final 2s)", frac, ok, offered)
	}
}
