package obs

import (
	"runtime"
	"sort"
)

// Runtime gauges: the go runtime's own vital signs, captured into a
// registry so every telemetry report carries the node's process health
// (goroutine count, heap pressure, GC pause tail) next to its
// application metrics. Capture is pull-based — call it right before
// snapshotting — because ReadMemStats is too expensive to sample on
// every metric write.

// CaptureRuntime records the current runtime state into reg:
//
//	runtime_goroutines             gauge  runtime.NumGoroutine
//	runtime_heap_alloc_bytes       gauge  MemStats.HeapAlloc
//	runtime_heap_objects           gauge  MemStats.HeapObjects
//	runtime_gc_total               gauge  MemStats.NumGC
//	runtime_gc_pause_p99_seconds   gauge  p99 over the recent pause ring
//
// Safe on a nil registry (no-op).
func CaptureRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("runtime_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("runtime_heap_objects").Set(float64(ms.HeapObjects))
	reg.Gauge("runtime_gc_total").Set(float64(ms.NumGC))
	reg.Gauge("runtime_gc_pause_p99_seconds").Set(gcPauseP99(&ms))
}

// gcPauseP99 computes the p99 GC stop-the-world pause over the runtime's
// ring of recent pauses (up to the last 256 GCs), in seconds. Zero when
// no GC has run yet.
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, 0, n)
	// PauseNs is a circular buffer; for NumGC <= 256 the first n entries
	// are the valid ones, beyond that every slot holds a recent pause.
	pauses = append(pauses, ms.PauseNs[:n]...)
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (n*99 + 99) / 100 // ceil(0.99*n)
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e9
}
