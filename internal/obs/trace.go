package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds recorded by the platform and resilience layers. A span is
// one causal hop event in a conversation, not an open/close interval:
// envelopes in this system are fire-and-forget, so a point event per
// hop reconstructs the timeline exactly.
const (
	SpanSend    = "send"    // envelope entered Platform.Send
	SpanDeliver = "deliver" // envelope placed in a local mailbox
	SpanRoute   = "route"   // envelope accepted by an outbound route
	SpanIngress = "ingress" // envelope arrived from a remote link
	SpanRetry   = "retry"   // resilience layer re-attempted a send
	SpanDrop    = "drop"    // envelope dead-lettered
	SpanBuffer  = "buffer"  // reconnect link buffered while down
	SpanReplay  = "replay"  // reconnect link replayed after redial
	SpanFault   = "fault"   // fault injector acted on the envelope
)

var (
	traceHi  = uint64(time.Now().UnixNano()) << 20 // process-unique high bits
	traceSeq atomic.Uint64
)

// NewTraceID returns a process-unique, never-zero trace identifier.
func NewTraceID() uint64 {
	return (traceHi | (traceSeq.Add(1) & 0xfffff)) | 1<<63
}

// Span is one recorded hop event.
type Span struct {
	Trace uint64    `json:"trace"`
	Seq   uint64    `json:"seq"`  // envelope sequence number
	Time  time.Time `json:"time"` // wall time at the recording node
	Node  string    `json:"node"` // platform name
	Kind  string    `json:"kind"` // one of the Span* constants
	From  string    `json:"from"`
	To    string    `json:"to"`
	Note  string    `json:"note,omitempty"`
}

// Tracer is a bounded ring of spans. Recording is cheap (one mutexed
// append); the ring keeps the most recent spans and drops the oldest.
// A nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	full  bool
	total uint64
}

// NewTracer returns a tracer retaining up to capacity spans
// (default 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record appends a span. Safe on nil.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Time.IsZero() {
		s.Time = time.Now()
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	t.total++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Total reports how many spans have ever been recorded (including those
// already evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Span, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Trace returns the retained spans for one trace ID, in time order.
func (t *Tracer) Trace(id uint64) []Span {
	all := t.Spans()
	out := make([]Span, 0, 16)
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Traces lists the distinct trace IDs currently retained, in first-seen
// order.
func (t *Tracer) Traces() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, s := range t.Spans() {
		if s.Trace == 0 || seen[s.Trace] {
			continue
		}
		seen[s.Trace] = true
		out = append(out, s.Trace)
	}
	return out
}

// Timeline renders one trace as a human-readable causal hop timeline,
// with offsets relative to the first span:
//
//	trace 8000018f3a... (7 spans)
//	  +0.000000s  [client]  send     seq=3  handheld -> query-agent
//	  +0.000184s  [client]  route    seq=3  handheld -> query-agent  (route 1)
//	  ...
func (t *Tracer) Timeline(id uint64) string {
	spans := t.Trace(id)
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x (%d spans)\n", id, len(spans))
	if len(spans) == 0 {
		return b.String()
	}
	t0 := spans[0].Time
	nodeW, kindW := 0, 0
	for _, s := range spans {
		if len(s.Node) > nodeW {
			nodeW = len(s.Node)
		}
		if len(s.Kind) > kindW {
			kindW = len(s.Kind)
		}
	}
	for _, s := range spans {
		fmt.Fprintf(&b, "  +%9.6fs  [%-*s]  %-*s  seq=%-4d %s -> %s",
			s.Time.Sub(t0).Seconds(), nodeW, s.Node, kindW, s.Kind, s.Seq, s.From, s.To)
		if s.Note != "" {
			fmt.Fprintf(&b, "  (%s)", s.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
