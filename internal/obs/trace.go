package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds recorded by the platform and resilience layers. A span is
// one causal hop event in a conversation, not an open/close interval:
// envelopes in this system are fire-and-forget, so a point event per
// hop reconstructs the timeline exactly.
const (
	SpanSend    = "send"    // envelope entered Platform.Send
	SpanDeliver = "deliver" // envelope placed in a local mailbox
	SpanRoute   = "route"   // envelope accepted by an outbound route
	SpanIngress = "ingress" // envelope arrived from a remote link
	SpanRetry   = "retry"   // resilience layer re-attempted a send
	SpanDrop    = "drop"    // envelope dead-lettered
	SpanBuffer  = "buffer"  // reconnect link buffered while down
	SpanReplay  = "replay"  // reconnect link replayed after redial
	SpanFault   = "fault"   // fault injector acted on the envelope
)

var (
	traceHi  = uint64(time.Now().UnixNano()) << 20 // process-unique high bits
	traceSeq atomic.Uint64
)

// NewTraceID returns a process-unique, never-zero trace identifier.
func NewTraceID() uint64 {
	return (traceHi | (traceSeq.Add(1) & 0xfffff)) | 1<<63
}

// Span is one recorded hop event.
type Span struct {
	Trace uint64    `json:"trace"`
	Seq   uint64    `json:"seq"`  // envelope sequence number
	Time  time.Time `json:"time"` // wall time at the recording node
	Node  string    `json:"node"` // platform name
	Kind  string    `json:"kind"` // one of the Span* constants
	From  string    `json:"from"`
	To    string    `json:"to"`
	Note  string    `json:"note,omitempty"`
}

// Tracer is a bounded ring of spans with optional head sampling and
// tail-keep. Recording is cheap (one mutexed append on the sampled
// path, a pair of atomic adds on the blacked-out path); the ring keeps
// the most recent retained spans and evicts the oldest, counting every
// eviction. A nil *Tracer is a valid no-op sink.
//
// With no sampler (SetSampler never called, or called with nil) every
// span is retained — the original full-capture behavior. With a
// sampler, the deterministic head decision (see Sampler) routes each
// span either into the ring or into a short "recent" side buffer.
// KeepTrace promotes a trace after the fact: its buffered spans move
// into the ring in order and all its future spans are retained, which
// is how error, shed, breaker-open, and p99-slow conversations survive
// a 1% sampling rate. Drop spans trigger the promotion automatically.
//
// The ledger is exact and loss is never silent:
//
//	trace_sampled_total — spans retained in the ring (head or tail keep)
//	trace_dropped_total — spans whose loss became irrevocable (evicted
//	                      from the recent buffer unpromoted, or recorded
//	                      while the sampler was off)
//	trace_evicted_total — retained spans later overwritten by ring wrap
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	full  bool
	total uint64

	// Tail-keep machinery, all guarded by mu.
	recent  []Span // head-dropped spans, promotion candidates
	rnext   int
	rfull   bool
	keep    map[uint64]struct{} // tail-kept traces (current generation)
	keepOld map[uint64]struct{} // previous generation (approximate age-out)
	keepCap int

	sampler atomic.Pointer[Sampler]

	sampled atomic.Uint64
	dropped atomic.Uint64
	evicted atomic.Uint64

	// Optional mirrors into a metrics registry (AttachMetrics) and the
	// flight-recorder feed (SetOnRecord).
	cSampled atomic.Pointer[Counter]
	cDropped atomic.Pointer[Counter]
	cEvicted atomic.Pointer[Counter]
	onRecord atomic.Value // func(Span)
}

// recentCap sizes the tail-keep side buffer: it only needs to cover the
// spans of conversations still in flight, not history.
const recentCap = 512

// keepGenCap bounds the tail-keep set per generation; two generations
// are live at once, so at most 2×keepGenCap traces are pinned.
const keepGenCap = 1024

// NewTracer returns a tracer retaining up to capacity spans
// (default 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Span, capacity), keepCap: keepGenCap}
}

// SetSampler installs (or with nil, removes) the head sampler. Safe on
// nil and safe to call while recording.
func (t *Tracer) SetSampler(s *Sampler) {
	if t == nil {
		return
	}
	t.sampler.Store(s)
}

// Sampler returns the installed sampler (nil = capture everything).
func (t *Tracer) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.sampler.Load()
}

// AttachMetrics mirrors the ledger into reg as trace_sampled_total,
// trace_dropped_total, and trace_evicted_total, seeding the counters
// with anything counted before attachment.
func (t *Tracer) AttachMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	cs := reg.Counter("trace_sampled_total")
	cd := reg.Counter("trace_dropped_total")
	ce := reg.Counter("trace_evicted_total")
	cs.Add(float64(t.sampled.Load()))
	cd.Add(float64(t.dropped.Load()))
	ce.Add(float64(t.evicted.Load()))
	t.cSampled.Store(cs)
	t.cDropped.Store(cd)
	t.cEvicted.Store(ce)
}

// SetOnRecord installs a hook called (outside the tracer lock) for
// every span retained in the ring — the flight-recorder feed. Promoted
// spans fire it too, in order. Pass nil to detach.
func (t *Tracer) SetOnRecord(fn func(Span)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onRecord.Store((func(Span))(nil))
		return
	}
	t.onRecord.Store(fn)
}

func (t *Tracer) fireOnRecord(spans ...Span) {
	fn, _ := t.onRecord.Load().(func(Span))
	if fn == nil {
		return
	}
	for _, s := range spans {
		fn(s)
	}
}

// SampledTotal reports spans retained in the ring since start.
func (t *Tracer) SampledTotal() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// DroppedTotal reports spans irrevocably lost to sampling since start.
func (t *Tracer) DroppedTotal() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Evicted reports retained spans since overwritten by ring wrap — the
// "full-capture loss" that used to be silent.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted.Load()
}

// Record appends a span, applying the sampling policy. Safe on nil.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	smp := t.sampler.Load()
	if smp.Off() {
		// Blacked out: count the loss and get off the hot path without
		// touching the clock or the lock.
		t.dropped.Add(1)
		t.cDropped.Load().Add(1)
		return
	}
	if s.Time.IsZero() {
		s.Time = time.Now()
	}
	t.mu.Lock()
	admit := smp.Sampled(s.Trace) || t.keptLocked(s.Trace)
	if !admit && s.Kind == SpanDrop {
		// A dead-lettered envelope is exactly the trace worth keeping:
		// promote everything buffered for it, then admit this span.
		t.keepLocked(s.Trace)
		promoted := t.promoteLocked(s.Trace)
		t.appendLocked(s)
		t.mu.Unlock()
		t.fireOnRecord(promoted...)
		t.fireOnRecord(s)
		return
	}
	if admit {
		t.appendLocked(s)
		t.mu.Unlock()
		t.fireOnRecord(s)
		return
	}
	t.bufferLocked(s)
	t.mu.Unlock()
}

// KeepTrace pins a trace: its buffered recent spans are promoted into
// the ring and all its future spans are retained regardless of the head
// decision. This is the tail-keep entry point for error, shed,
// breaker-open, and p99-slow conversations. Safe on nil; a no-op for
// trace 0, with no sampler (everything is kept already), or when
// sampling is off.
func (t *Tracer) KeepTrace(id uint64) {
	if t == nil || id == 0 {
		return
	}
	smp := t.sampler.Load()
	if smp == nil || smp.Off() {
		return
	}
	t.mu.Lock()
	if smp.Sampled(id) || t.keptLocked(id) {
		t.mu.Unlock()
		return
	}
	t.keepLocked(id)
	promoted := t.promoteLocked(id)
	t.mu.Unlock()
	t.fireOnRecord(promoted...)
}

// appendLocked retains s in the main ring. Caller holds mu.
func (t *Tracer) appendLocked(s Span) {
	if t.full {
		t.evicted.Add(1)
		t.cEvicted.Load().Add(1)
	}
	t.ring[t.next] = s
	t.next++
	t.total++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.sampled.Add(1)
	t.cSampled.Load().Add(1)
}

// bufferLocked parks a head-dropped span in the recent side buffer; the
// span it overwrites (if any) is now irrevocably lost and counted.
// Caller holds mu.
func (t *Tracer) bufferLocked(s Span) {
	if t.recent == nil {
		t.recent = make([]Span, recentCap)
	}
	if t.rfull {
		t.dropped.Add(1)
		t.cDropped.Load().Add(1)
	}
	t.recent[t.rnext] = s
	t.rnext++
	if t.rnext == len(t.recent) {
		t.rnext = 0
		t.rfull = true
	}
}

// keptLocked reports whether id is tail-kept. Caller holds mu.
func (t *Tracer) keptLocked(id uint64) bool {
	if _, ok := t.keep[id]; ok {
		return true
	}
	_, ok := t.keepOld[id]
	return ok
}

// keepLocked marks id tail-kept, rotating generations when the current
// one fills (approximate age-out with bounded memory). Caller holds mu.
func (t *Tracer) keepLocked(id uint64) {
	if t.keep == nil {
		t.keep = make(map[uint64]struct{}, 64)
	}
	if t.keepCap <= 0 {
		t.keepCap = keepGenCap
	}
	if len(t.keep) >= t.keepCap {
		t.keepOld = t.keep
		t.keep = make(map[uint64]struct{}, 64)
	}
	t.keep[id] = struct{}{}
}

// promoteLocked moves id's spans from the recent buffer into the ring,
// oldest first, returning them for the OnRecord hook. Caller holds mu.
func (t *Tracer) promoteLocked(id uint64) []Span {
	if t.recent == nil {
		return nil
	}
	n := len(t.recent)
	if !t.rfull {
		n = t.rnext
	}
	var promoted []Span
	scan := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if t.recent[i].Trace != id {
				continue
			}
			t.appendLocked(t.recent[i])
			promoted = append(promoted, t.recent[i])
			t.recent[i].Trace = 0 // tombstone; never promote twice
		}
	}
	if t.rfull {
		scan(t.rnext, len(t.recent))
		scan(0, t.rnext)
	} else {
		scan(0, n)
	}
	return promoted
}

// Total reports how many spans have ever been retained in the ring
// (including those already evicted from it).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Span, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Trace returns the retained spans for one trace ID, in time order.
func (t *Tracer) Trace(id uint64) []Span {
	all := t.Spans()
	out := make([]Span, 0, 16)
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Traces lists the distinct trace IDs currently retained, in first-seen
// order.
func (t *Tracer) Traces() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, s := range t.Spans() {
		if s.Trace == 0 || seen[s.Trace] {
			continue
		}
		seen[s.Trace] = true
		out = append(out, s.Trace)
	}
	return out
}

// Timeline renders one trace as a human-readable causal hop timeline,
// with offsets relative to the first span:
//
//	trace 8000018f3a... (7 spans)
//	  +0.000000s  [client]  send     seq=3  handheld -> query-agent
//	  +0.000184s  [client]  route    seq=3  handheld -> query-agent  (route 1)
//	  ...
func (t *Tracer) Timeline(id uint64) string {
	spans := t.Trace(id)
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x (%d spans)\n", id, len(spans))
	if len(spans) == 0 {
		return b.String()
	}
	t0 := spans[0].Time
	nodeW, kindW := 0, 0
	for _, s := range spans {
		if len(s.Node) > nodeW {
			nodeW = len(s.Node)
		}
		if len(s.Kind) > kindW {
			kindW = len(s.Kind)
		}
	}
	for _, s := range spans {
		fmt.Fprintf(&b, "  +%9.6fs  [%-*s]  %-*s  seq=%-4d %s -> %s",
			s.Time.Sub(t0).Seconds(), nodeW, s.Node, kindW, s.Kind, s.Seq, s.From, s.To)
		if s.Note != "" {
			fmt.Fprintf(&b, "  (%s)", s.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
