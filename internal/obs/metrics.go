// Package obs is the observability substrate for the pervasive grid:
// a dependency-free metrics registry (counters, gauges, histograms with
// quantile snapshots, labeled families), a lightweight envelope tracer,
// and a deterministic clock seam for tests.
//
// The paper's dynamic partitioning scheme adapts "by comparing estimates
// with measured cost"; this package is where the measured side lives.
// Everything is safe for concurrent use and a nil *Registry is a valid
// no-op sink, so instrumented code never needs to guard call sites.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Metrics are created on first use; the
// same (name, labels) pair always returns the same instrument.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// metricKey renders "name" or `name{k1="v1",k2="v2"}` with label keys
// sorted, so call-site label ordering never splits a series.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		labels = append(labels, "")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing float64 value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets are the upper bounds (in seconds when timing, but the
// histogram is unit-agnostic) of the default exponential bucket layout:
// 1µs doubling up to ~34s, which spans an in-process deliver (~µs)
// through a multi-attempt retry conversation (~s).
var histBuckets = func() []float64 {
	b := make([]float64, 0, 26)
	for v := 1e-6; v < 40; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// Histogram accumulates observations into exponential buckets and can
// report interpolated quantiles. All methods are lock-free.
type Histogram struct {
	counts  []atomic.Uint64 // len(histBuckets)+1; last is overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits
	maxBits atomic.Uint64 // float64 bits
	hasObs  atomic.Bool
}

func newHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, len(histBuckets)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(histBuckets, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.hasObs.Store(true)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the interpolated q-quantile (0 < q <= 1) of the
// recorded distribution, or 0 when empty. Accuracy is bounded by the
// bucket width (factor-of-two), with min/max used to tighten the tails.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshotLocked().quantile(q)
}

type histState struct {
	counts   []uint64
	total    uint64
	min, max float64
}

func (h *Histogram) snapshotLocked() histState {
	st := histState{counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		st.counts[i] = h.counts[i].Load()
		st.total += st.counts[i]
	}
	st.min = math.Float64frombits(h.minBits.Load())
	st.max = math.Float64frombits(h.maxBits.Load())
	return st
}

func (st histState) quantile(q float64) float64 {
	if st.total == 0 {
		return 0
	}
	rank := q * float64(st.total)
	if rank < 1 {
		rank = 1
	}
	// With few observations a high quantile lands in (or past) the last
	// occupied bucket, and interpolating inside a factor-of-two bucket
	// invents a value no one observed — p99 of 3 samples must not read
	// above the slowest of the 3. When the rank rounds up to the final
	// observation, answer with the exact max instead of interpolating.
	if math.Ceil(rank) >= float64(st.total) && !math.IsInf(st.max, -1) {
		return st.max
	}
	var cum float64
	for i, c := range st.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo, hi := bucketBounds(i)
		if !math.IsInf(st.min, 1) && st.min > lo {
			lo = st.min
		}
		if !math.IsInf(st.max, -1) && st.max < hi {
			hi = st.max
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return st.max
}

func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, histBuckets[0]
	}
	if i >= len(histBuckets) {
		return histBuckets[len(histBuckets)-1], math.Inf(1)
	}
	return histBuckets[i-1], histBuckets[i]
}

// Counter returns (creating if needed) the counter for name+labels.
// Nil-safe: on a nil registry it returns a nil *Counter whose methods
// are no-ops.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	h := r.histograms[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[key]; h == nil {
		h = newHistogram()
		r.histograms[key] = h
	}
	return h
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time view of every metric in a registry, keyed
// by the rendered series name (including labels).
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. Safe on a nil registry (empty view).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		st := h.snapshotLocked()
		hs := HistogramSnapshot{
			Count: h.count.Load(),
			Sum:   math.Float64frombits(h.sumBits.Load()),
			P50:   st.quantile(0.50),
			P95:   st.quantile(0.95),
			P99:   st.quantile(0.99),
		}
		if h.hasObs.Load() {
			hs.Min = st.min
			hs.Max = st.max
		}
		s.Histograms[k] = hs
	}
	return s
}
