package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if r.Counter("events_total") != c {
		t.Fatal("same name should return same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestLabelCanonicalisation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "route", "1", "dir", "out")
	b := r.Counter("hits_total", "dir", "out", "route", "1")
	if a != b {
		t.Fatal("label order should not split a series")
	}
	a.Inc()
	snap := r.Snapshot()
	key := `hits_total{dir="out",route="1"}`
	if snap.Counters[key] != 1 {
		t.Fatalf("snapshot missing %s: %v", key, snap.Counters)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %v, want 8000", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds")
	// 1..1000 ms uniform: p50 ~ 0.5s, p99 ~ 0.99s.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 0.25 || p50 > 0.75 {
		t.Fatalf("p50 = %v, want ~0.5 (bucketed)", p50)
	}
	if p99 < 0.5 || p99 > 1.0 {
		t.Fatalf("p99 = %v, want ~0.99 (bucketed)", p99)
	}
	if p99 < p50 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	snap := r.Snapshot().Histograms["latency_seconds"]
	if snap.Min != 0.001 || snap.Max != 1.0 {
		t.Fatalf("min/max = %v/%v, want 0.001/1", snap.Min, snap.Max)
	}
	if snap.Sum < 500 || snap.Sum > 501 {
		t.Fatalf("sum = %v, want ~500.5", snap.Sum)
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h := newHistogram()
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
	h.Observe(1e9) // beyond the last bucket
	if q := h.Quantile(0.99); q != 1e9 {
		t.Fatalf("overflow quantile = %v, want max", q)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if q := r.Histogram("z").Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %v", q)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "k", "v").Add(2)
	r.Gauge("b").Set(1.5)
	r.Histogram("c_seconds").Observe(0.01)
	var b strings.Builder
	WriteProm(&b, r.Snapshot())
	out := b.String()
	for _, want := range []string{
		`a_total{k="v"} 2`,
		"b 1.5",
		`c_seconds_count{} 1`,
		`c_seconds_sum{} 0.01`,
	} {
		// histograms without labels have no brace part
		want = strings.ReplaceAll(want, "{}", "")
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(b.String(), "hits_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", b.String())
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["hits_total"] != 1 {
		t.Fatalf("/metrics.json = %+v", snap)
	}
}

func TestTraceIDsUniqueAndNonZero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x", id)
		}
		seen[id] = true
	}
}

func TestTracerRingAndTimeline(t *testing.T) {
	tr := NewTracer(4)
	id := NewTraceID()
	base := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		tr.Record(Span{Trace: id, Seq: uint64(i), Time: base.Add(time.Duration(i) * time.Millisecond),
			Node: "n", Kind: SpanSend, From: "a", To: "b"})
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d, want 4", len(spans))
	}
	if spans[0].Seq != 2 || spans[3].Seq != 5 {
		t.Fatalf("ring order wrong: %+v", spans)
	}
	tl := tr.Timeline(id)
	if !strings.Contains(tl, "(4 spans)") || !strings.Contains(tl, "send") {
		t.Fatalf("timeline:\n%s", tl)
	}
	var nilT *Tracer
	nilT.Record(Span{}) // must not panic
	if nilT.Total() != 0 || len(nilT.Spans()) != 0 {
		t.Fatal("nil tracer should be empty")
	}
}

func TestFakeClockAdvance(t *testing.T) {
	fc := NewFakeClock()
	ch := fc.After(100 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fired before advance")
	default:
	}
	fc.Advance(50 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	fc.Advance(50 * time.Millisecond)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("did not fire after advance")
	}
	if fc.Waiters() != 0 {
		t.Fatalf("waiters = %d", fc.Waiters())
	}
}

func TestFakeClockAutoAdvance(t *testing.T) {
	fc := NewFakeClock()
	stop := fc.AutoAdvance()
	defer stop()
	start := fc.Now()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			fc.Sleep(250 * time.Millisecond)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("auto-advance did not drive sleeps")
	}
	if got := fc.Now().Sub(start); got != 5*250*time.Millisecond {
		t.Fatalf("fake time advanced %v, want 1.25s", got)
	}
}
