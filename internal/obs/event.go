package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Wide events: one structured record per conversation, emitted when the
// conversation ends. Where a span is one hop, a wide event is the whole
// story — route, retries, sheds, breaker state, per-phase latency
// breakdown, outcome — in a single row you can filter and aggregate
// without stitching. Events ride the telemetry plane to the monitor,
// are served at /events.json, and feed the flight recorder, so the last
// conversations before a crash are on disk.

// Conversation outcomes. Everything that is not OutcomeOK is always
// tail-kept by the tracer.
const (
	OutcomeOK          = "ok"
	OutcomeTimeout     = "timeout"
	OutcomeError       = "error"
	OutcomeBreakerOpen = "breaker-open"
)

// Phase is one named slice of a conversation's latency budget.
type Phase struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// Event is the wide record of one conversation. Construct it only via
// NewEvent (lint rule rawevent) so the identity fields are never
// forgotten; everything else accretes through the helper methods.
type Event struct {
	Trace    uint64    `json:"trace"`
	Node     string    `json:"node"`
	From     string    `json:"from"`
	To       string    `json:"to"`
	Ontology string    `json:"ontology,omitempty"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Ms       float64   `json:"ms"` // End-Start, denormalized for filtering

	Hops    int `json:"hops,omitempty"`    // hop count of the final reply
	Retries int `json:"retries,omitempty"` // re-sent attempts
	Sheds   int `json:"sheds,omitempty"`   // breaker rejects + mailbox sheds

	Breaker string  `json:"breaker,omitempty"` // breaker state toward To at the end
	Phases  []Phase `json:"phases,omitempty"`  // per-attempt/per-hop latency breakdown
	Outcome string  `json:"outcome"`           // one of the Outcome* constants
	Err     string  `json:"err,omitempty"`

	Attrs map[string]string `json:"attrs,omitempty"`
}

// NewEvent is the only sanctioned Event constructor: it pins the
// identity fields (who talked to whom, on which node, under which
// trace) that every downstream consumer keys on.
func NewEvent(node string, trace uint64, from, to, ontology string, start time.Time) Event {
	return Event{
		Trace:    trace,
		Node:     node,
		From:     from,
		To:       to,
		Ontology: ontology,
		Start:    start,
	}
}

// AddPhase appends one latency-breakdown slice.
func (e *Event) AddPhase(name string, d time.Duration) {
	e.Phases = append(e.Phases, Phase{Name: name, Ms: float64(d) / float64(time.Millisecond)})
}

// SetAttr attaches a scenario-specific key/value.
func (e *Event) SetAttr(k, v string) {
	if e.Attrs == nil {
		e.Attrs = make(map[string]string, 4)
	}
	e.Attrs[k] = v
}

// Finish stamps the end time and outcome, denormalizing the duration.
func (e *Event) Finish(outcome string, end time.Time) {
	e.Outcome = outcome
	e.End = end
	if !e.Start.IsZero() && end.After(e.Start) {
		e.Ms = float64(end.Sub(e.Start)) / float64(time.Millisecond)
	}
}

// Failed reports whether the conversation ended in anything but OK.
func (e *Event) Failed() bool { return e.Outcome != "" && e.Outcome != OutcomeOK }

// EventLog is a bounded ring of wide events. A nil *EventLog is a valid
// no-op sink, mirroring Tracer.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	total   uint64
	evicted uint64

	onEmit func(Event) // chained; called under mu in emit order

	cEmitted *Counter
	cEvicted *Counter
}

// NewEventLog returns a log retaining up to capacity events
// (default 1024 when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// AttachMetrics mirrors the log into reg as events_emitted_total and
// events_evicted_total, seeding with anything counted before attach.
func (l *EventLog) AttachMetrics(reg *Registry) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cEmitted = reg.Counter("events_emitted_total")
	l.cEvicted = reg.Counter("events_evicted_total")
	l.cEmitted.Add(float64(l.total))
	l.cEvicted.Add(float64(l.evicted))
}

// OnEmit chains a hook called for every emitted event (the flight
// recorder and the telemetry reporter both tap here). Hooks run in
// installation order, under the log's lock: keep them fast.
func (l *EventLog) OnEmit(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.onEmit
	if prev == nil {
		l.onEmit = fn
		return
	}
	l.onEmit = func(e Event) { prev(e); fn(e) }
}

// Emit records one finished conversation. Safe on nil.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.full {
		l.evicted++
		l.cEvicted.Add(1)
	}
	l.ring[l.next] = e
	l.next++
	l.total++
	l.cEmitted.Add(1)
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	fn := l.onEmit
	if fn != nil {
		fn(e)
	}
	l.mu.Unlock()
}

// Total reports events ever emitted (including evicted ones).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Evicted reports events overwritten by ring wrap.
func (l *EventLog) Evicted() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]Event, l.next)
		copy(out, l.ring[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Since returns events emitted after the first fromTotal emissions —
// the delta-shipping shape the telemetry reporter uses. Events already
// evicted from the ring are gone; the second return value is the new
// total to resume from.
func (l *EventLog) Since(fromTotal uint64) ([]Event, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	total := l.total
	l.mu.Unlock()
	if total <= fromTotal {
		return nil, total
	}
	all := l.Events()
	want := total - fromTotal
	if want < uint64(len(all)) {
		all = all[uint64(len(all))-want:]
	}
	out := make([]Event, len(all))
	copy(out, all)
	return out, total
}

// eventsPage is the /events.json response shape.
type eventsPage struct {
	Total   uint64  `json:"total"`
	Evicted uint64  `json:"evicted"`
	Events  []Event `json:"events"`
}

// EventsHandler serves the retained wide events as JSON, newest last.
func EventsHandler(l *EventLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		page := eventsPage{Total: l.Total(), Evicted: l.Evicted(), Events: l.Events()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}
