package obs

import (
	"runtime"
	"testing"
)

func TestSnapshotDeltaApplyRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Counter("b_total", "k", "v").Add(1)
	r.Gauge("g").Set(7)
	r.Histogram("h_seconds").Observe(0.01)
	prev := r.Snapshot()

	// Mutate a subset: one counter, one new gauge, the histogram.
	r.Counter("a_total").Add(2)
	r.Gauge("g2").Set(1)
	r.Histogram("h_seconds").Observe(0.02)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if len(d.Counters) != 1 || d.Counters["a_total"] != 5 {
		t.Fatalf("delta counters = %v, want only a_total=5", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges["g2"] != 1 {
		t.Fatalf("delta gauges = %v, want only g2=1", d.Gauges)
	}
	if len(d.Histograms) != 1 {
		t.Fatalf("delta histograms = %v, want only h_seconds", d.Histograms)
	}
	if d.Len() != 3 {
		t.Fatalf("delta len = %d, want 3", d.Len())
	}

	merged := prev.Apply(d)
	if len(merged.Counters) != len(cur.Counters) ||
		merged.Counters["a_total"] != 5 || merged.Counters[`b_total{k="v"}`] != 1 {
		t.Fatalf("apply counters = %v", merged.Counters)
	}
	if merged.Gauges["g"] != 7 || merged.Gauges["g2"] != 1 {
		t.Fatalf("apply gauges = %v", merged.Gauges)
	}
	if merged.Histograms["h_seconds"].Count != 2 {
		t.Fatalf("apply histogram count = %d, want 2", merged.Histograms["h_seconds"].Count)
	}
	// prev must be untouched (Apply copies).
	if prev.Counters["a_total"] != 3 {
		t.Fatalf("Apply mutated its receiver: %v", prev.Counters)
	}
}

func TestSnapshotDeltaOfIdenticalIsEmpty(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Histogram("h").Observe(1)
	s := r.Snapshot()
	if d := s.Delta(s.Clone()); d.Len() != 0 {
		t.Fatalf("delta of identical snapshots = %+v, want empty", d)
	}
}

func TestWithLabelAndMergeByNode(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("x_total").Add(1)
	r1.Gauge("depth", "agent", "a").Set(4)
	r2 := NewRegistry()
	r2.Counter("x_total").Add(9)
	r2.Histogram("h").Observe(2)

	merged := MergeByNode(map[string]Snapshot{
		"n1": r1.Snapshot(),
		"n2": r2.Snapshot(),
	})
	if merged.Counters[`x_total{node="n1"}`] != 1 || merged.Counters[`x_total{node="n2"}`] != 9 {
		t.Fatalf("merged counters = %v", merged.Counters)
	}
	if merged.Gauges[`depth{agent="a",node="n1"}`] != 4 {
		t.Fatalf("merged gauges = %v", merged.Gauges)
	}
	if merged.Histograms[`h{node="n2"}`].Count != 1 {
		t.Fatalf("merged histograms = %v", merged.Histograms)
	}
}

func TestCaptureRuntimeGauges(t *testing.T) {
	CaptureRuntime(nil) // nil-safe

	reg := NewRegistry()
	runtime.GC() // ensure at least one pause sample exists
	CaptureRuntime(reg)
	s := reg.Snapshot()
	if s.Gauges["runtime_goroutines"] < 1 {
		t.Fatalf("runtime_goroutines = %v, want >= 1", s.Gauges["runtime_goroutines"])
	}
	if s.Gauges["runtime_heap_alloc_bytes"] <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %v, want > 0", s.Gauges["runtime_heap_alloc_bytes"])
	}
	if s.Gauges["runtime_heap_objects"] <= 0 {
		t.Fatalf("runtime_heap_objects = %v, want > 0", s.Gauges["runtime_heap_objects"])
	}
	if s.Gauges["runtime_gc_total"] < 1 {
		t.Fatalf("runtime_gc_total = %v, want >= 1", s.Gauges["runtime_gc_total"])
	}
	if p99 := s.Gauges["runtime_gc_pause_p99_seconds"]; p99 < 0 || p99 > 10 {
		t.Fatalf("runtime_gc_pause_p99_seconds = %v, want sane", p99)
	}
}

func TestGCPauseP99(t *testing.T) {
	var ms runtime.MemStats
	if got := gcPauseP99(&ms); got != 0 {
		t.Fatalf("no GC yet: p99 = %v, want 0", got)
	}
	// Three pauses: p99 of a 3-sample set is the max.
	ms.NumGC = 3
	ms.PauseNs[0], ms.PauseNs[1], ms.PauseNs[2] = 1000, 9000, 2000
	if got := gcPauseP99(&ms); got != 9000e-9 {
		t.Fatalf("p99 = %v, want 9µs", got)
	}
	// More GCs than the 256-entry ring: every slot is a valid sample.
	ms.NumGC = 1000
	for i := range ms.PauseNs {
		ms.PauseNs[i] = 500
	}
	if got := gcPauseP99(&ms); got != 500e-9 {
		t.Fatalf("wrapped ring p99 = %v, want 500ns", got)
	}
}
