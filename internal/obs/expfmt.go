package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4). Histograms emit _count, _sum, and quantile gauges
// (suffix _p50/_p95/_p99 spliced before any label set) rather than
// cumulative buckets — the consumers here are curl and scrapers that
// want percentiles directly.
func WriteProm(w io.Writer, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%s %g\n", k, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%s %g\n", k, s.Gauges[k])
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(w, "%s %d\n", spliceSuffix(k, "_count"), h.Count)
		fmt.Fprintf(w, "%s %g\n", spliceSuffix(k, "_sum"), h.Sum)
		fmt.Fprintf(w, "%s %g\n", spliceSuffix(k, "_p50"), h.P50)
		fmt.Fprintf(w, "%s %g\n", spliceSuffix(k, "_p95"), h.P95)
		fmt.Fprintf(w, "%s %g\n", spliceSuffix(k, "_p99"), h.P99)
	}
}

// spliceSuffix turns `name{labels}` into `name_suffix{labels}` (and a
// bare name into name_suffix).
func spliceSuffix(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}

// Source yields a metrics snapshot on demand; *Registry implements it.
type Source interface{ Snapshot() Snapshot }

// Merge combines snapshots; on key collision the later source wins.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}

// Handler serves the merged snapshot of the given sources:
//
//	GET /metrics       Prometheus text format
//	GET /metrics.json  JSON (obs.Snapshot)
//
// Mount it on any mux, or pass it directly to http.Serve.
func Handler(sources ...Source) http.Handler {
	snap := func() Snapshot {
		snaps := make([]Snapshot, 0, len(sources))
		for _, src := range sources {
			if src != nil {
				snaps = append(snaps, src.Snapshot())
			}
		}
		return Merge(snaps...)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, snap())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
	return mux
}
