package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// pickTraces returns one trace ID the sampler admits and one it drops,
// scanning NewTraceID-shaped IDs so tests stay valid if the hash changes.
func pickTraces(t *testing.T, smp *Sampler) (in, out uint64) {
	t.Helper()
	for id := uint64(1); id < 1<<16; id++ {
		if smp.Sampled(id) {
			if in == 0 {
				in = id
			}
		} else if out == 0 {
			out = id
		}
		if in != 0 && out != 0 {
			return in, out
		}
	}
	t.Fatal("could not find both a sampled and an unsampled trace ID")
	return 0, 0
}

func TestSamplerDeterministicAndClamped(t *testing.T) {
	smp := NewSampler(0.5)
	in, out := pickTraces(t, smp)
	// The head decision is a pure function of the trace ID: every node
	// in a fleet reaches the same verdict with no coordination.
	other := NewSampler(0.5)
	if !other.Sampled(in) || other.Sampled(out) {
		t.Fatal("two samplers at the same rate disagree on a verdict")
	}

	if s := NewSampler(1); !s.Sampled(out) {
		t.Fatal("rate 1 must keep everything")
	}
	if s := NewSampler(7.5); !s.Sampled(out) {
		t.Fatal("rate > 1 must clamp to keep-everything")
	}
	if s := NewSampler(-3); s.Sampled(in) || !s.Off() {
		t.Fatal("negative rate must clamp to off")
	}
	if !SamplerOff.Off() || SamplerOff.Sampled(in) {
		t.Fatal("SamplerOff must drop everything")
	}
	var nilSmp *Sampler
	if nilSmp.Off() || !nilSmp.Sampled(out) {
		t.Fatal("nil sampler must keep everything (full-capture v1 behavior)")
	}

	// At 50% the admitted fraction over many sequential IDs should be
	// near half — splitmix64 scrambles the low-entropy inputs.
	kept := 0
	const n = 4096
	for id := uint64(1); id <= n; id++ {
		if smp.Sampled(id) {
			kept++
		}
	}
	if kept < n/3 || kept > 2*n/3 {
		t.Fatalf("rate 0.5 kept %d of %d", kept, n)
	}
}

func span(trace uint64, kind string, at time.Time) Span {
	return Span{Trace: trace, Kind: kind, From: "a", To: "b", Time: at, Node: "n"}
}

func TestTracerHeadSamplingLedger(t *testing.T) {
	smp := NewSampler(0.5)
	in, out := pickTraces(t, smp)
	tr := NewTracer(16)
	tr.SetSampler(smp)
	reg := NewRegistry()
	tr.AttachMetrics(reg)
	t0 := time.Now()

	tr.Record(span(in, SpanSend, t0))
	tr.Record(span(out, SpanSend, t0))
	if got := tr.SampledTotal(); got != 1 {
		t.Fatalf("sampled = %d, want 1", got)
	}
	// The head-dropped span is in limbo (buffered, promotable): it is
	// not yet counted dropped, because its loss is not yet irrevocable.
	if got := tr.DroppedTotal(); got != 0 {
		t.Fatalf("dropped = %d, want 0 (buffered spans are not lost yet)", got)
	}
	if got := len(tr.Trace(in)); got != 1 {
		t.Fatalf("sampled trace has %d spans in ring, want 1", got)
	}
	if got := len(tr.Trace(out)); got != 0 {
		t.Fatalf("unsampled trace has %d spans in ring, want 0", got)
	}
	if v := reg.Counter("trace_sampled_total").Value(); v != 1 {
		t.Fatalf("trace_sampled_total = %g, want 1", v)
	}
}

func TestTracerTailKeepPromotesBufferedSpans(t *testing.T) {
	smp := NewSampler(0.5)
	_, out := pickTraces(t, smp)
	tr := NewTracer(64)
	tr.SetSampler(smp)
	var recorded []Span
	tr.SetOnRecord(func(s Span) { recorded = append(recorded, s) })
	t0 := time.Now()

	tr.Record(span(out, SpanSend, t0))
	tr.Record(span(out, SpanRoute, t0.Add(time.Millisecond)))
	if len(tr.Trace(out)) != 0 || len(recorded) != 0 {
		t.Fatal("head-dropped spans must not reach the ring or the hook yet")
	}

	// Tail-keep: the conversation turned out to matter. Its buffered
	// spans promote in order and future spans are admitted.
	tr.KeepTrace(out)
	tr.Record(span(out, SpanDeliver, t0.Add(2*time.Millisecond)))
	got := tr.Trace(out)
	if len(got) != 3 {
		t.Fatalf("tail-kept trace has %d spans, want 3 (2 promoted + 1 live)", len(got))
	}
	if got[0].Kind != SpanSend || got[1].Kind != SpanRoute || got[2].Kind != SpanDeliver {
		t.Fatalf("span order after promotion: %v %v %v", got[0].Kind, got[1].Kind, got[2].Kind)
	}
	if len(recorded) != 3 {
		t.Fatalf("OnRecord saw %d spans, want 3 (promotions fire it too)", len(recorded))
	}
	if tr.SampledTotal() != 3 || tr.DroppedTotal() != 0 {
		t.Fatalf("ledger sampled=%d dropped=%d, want 3/0", tr.SampledTotal(), tr.DroppedTotal())
	}
	// Idempotent: keeping again must not re-promote the tombstoned spans.
	tr.KeepTrace(out)
	if got := len(tr.Trace(out)); got != 3 {
		t.Fatalf("re-keep duplicated spans: %d", got)
	}
}

func TestTracerDropSpanAutoKeeps(t *testing.T) {
	smp := NewSampler(0.5)
	_, out := pickTraces(t, smp)
	tr := NewTracer(64)
	tr.SetSampler(smp)
	t0 := time.Now()

	tr.Record(span(out, SpanSend, t0))
	// A dead-letter is exactly the trace worth keeping: the drop span
	// must promote the buffered history and admit itself, no KeepTrace
	// call needed at the drop site.
	tr.Record(span(out, SpanDrop, t0.Add(time.Millisecond)))
	got := tr.Trace(out)
	if len(got) != 2 || got[1].Kind != SpanDrop {
		t.Fatalf("drop span did not auto-keep: %d spans", len(got))
	}
}

func TestTracerLedgerCountsIrrevocableLoss(t *testing.T) {
	smp := NewSampler(0.5)
	_, out := pickTraces(t, smp)
	tr := NewTracer(8)
	tr.SetSampler(smp)
	t0 := time.Now()

	// Overflow the recent side buffer with unsampled spans: every
	// overwrite is one span whose loss became irrevocable.
	for i := 0; i < recentCap+10; i++ {
		tr.Record(span(out, SpanSend, t0))
	}
	if got := tr.DroppedTotal(); got != 10 {
		t.Fatalf("dropped = %d, want 10 (buffer overwrites only)", got)
	}

	// Off mode: count-and-return, nothing retained, KeepTrace no-op.
	tr2 := NewTracer(8)
	tr2.SetSampler(SamplerOff)
	tr2.Record(span(out, SpanSend, t0))
	tr2.KeepTrace(out)
	tr2.Record(span(out, SpanSend, t0))
	if tr2.SampledTotal() != 0 || tr2.DroppedTotal() != 2 || tr2.Total() != 0 {
		t.Fatalf("off mode: sampled=%d dropped=%d total=%d, want 0/2/0",
			tr2.SampledTotal(), tr2.DroppedTotal(), tr2.Total())
	}

	// Ring eviction: admit more than capacity with full capture.
	tr3 := NewTracer(8)
	reg := NewRegistry()
	tr3.AttachMetrics(reg)
	for i := 0; i < 11; i++ {
		tr3.Record(span(uint64(i+1), SpanSend, t0))
	}
	if got := tr3.Evicted(); got != 3 {
		t.Fatalf("evicted = %d, want 3", got)
	}
	if v := reg.Counter("trace_evicted_total").Value(); v != 3 {
		t.Fatalf("trace_evicted_total = %g, want 3", v)
	}
}

func TestEventLogRingSinceAndHandler(t *testing.T) {
	l := NewEventLog(4)
	reg := NewRegistry()
	l.AttachMetrics(reg)
	var hooked int
	l.OnEmit(func(Event) { hooked++ })

	t0 := time.Now()
	for i := 0; i < 6; i++ {
		ev := NewEvent("n", uint64(i+1), "a", "b", "ont", t0)
		ev.Finish(OutcomeOK, t0.Add(time.Millisecond))
		l.Emit(ev)
	}
	if l.Total() != 6 || l.Evicted() != 2 {
		t.Fatalf("total=%d evicted=%d, want 6/2", l.Total(), l.Evicted())
	}
	if hooked != 6 {
		t.Fatalf("OnEmit fired %d times, want 6", hooked)
	}
	evs := l.Events()
	if len(evs) != 4 || evs[0].Trace != 3 || evs[3].Trace != 6 {
		t.Fatalf("ring holds %d events, first=%d last=%d; want 4 events 3..6",
			len(evs), evs[0].Trace, evs[len(evs)-1].Trace)
	}

	// Delta shipping: Since(fromTotal) returns only what is new, and
	// re-asking from the returned total yields nothing.
	newer, total := l.Since(4)
	if len(newer) != 2 || newer[0].Trace != 5 || total != 6 {
		t.Fatalf("Since(4) = %d events from trace %d (total %d), want 2 from 5 (6)",
			len(newer), newer[0].Trace, total)
	}
	if again, _ := l.Since(total); len(again) != 0 {
		t.Fatalf("Since(total) returned %d events, want 0", len(again))
	}
	// A gap larger than the ring degrades to "everything retained".
	all, _ := l.Since(1)
	if len(all) != 4 {
		t.Fatalf("Since(1) = %d events, want the 4 retained", len(all))
	}

	if v := reg.Counter("events_emitted_total").Value(); v != 6 {
		t.Fatalf("events_emitted_total = %g, want 6", v)
	}

	rec := httptest.NewRecorder()
	EventsHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/events.json", nil))
	var page struct {
		Total   uint64  `json:"total"`
		Evicted uint64  `json:"evicted"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("events.json did not parse: %v", err)
	}
	if page.Total != 6 || page.Evicted != 2 || len(page.Events) != 4 {
		t.Fatalf("events.json total=%d evicted=%d events=%d, want 6/2/4",
			page.Total, page.Evicted, len(page.Events))
	}
}

func TestWideEventLifecycle(t *testing.T) {
	t0 := time.Now()
	ev := NewEvent("node", 42, "client", "server", "ont", t0)
	ev.AddPhase("attempt-1", 3*time.Millisecond)
	ev.SetAttr("k", "v")
	ev.Retries = 1
	ev.Finish(OutcomeTimeout, t0.Add(10*time.Millisecond))
	if !ev.Failed() {
		t.Fatal("timeout outcome must count as failed")
	}
	if ev.Ms < 9.9 || ev.Ms > 10.1 {
		t.Fatalf("Ms = %g, want ~10", ev.Ms)
	}
	if len(ev.Phases) != 1 || ev.Phases[0].Name != "attempt-1" {
		t.Fatalf("phases = %+v", ev.Phases)
	}
	if ev.Attrs["k"] != "v" {
		t.Fatalf("attrs = %v", ev.Attrs)
	}
	ok := NewEvent("node", 43, "a", "b", "ont", t0)
	ok.Finish(OutcomeOK, t0.Add(time.Millisecond))
	if ok.Failed() {
		t.Fatal("ok outcome must not count as failed")
	}
}

// TestQuantileSmallCountClampsToMax is the regression test for the
// small-sample percentile lie: with 3 observations, p99's rank rounds to
// the last observation, and the answer must be the exact recorded max,
// not the bucket's upper bound (which overstated by up to the bucket
// width).
func TestQuantileSmallCountClampsToMax(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	for _, v := range []float64{0.010, 0.020, 0.517} {
		h.Observe(v)
	}
	if got := h.Quantile(0.99); got != 0.517 {
		t.Fatalf("p99 of 3 obs = %g, want the exact max 0.517", got)
	}
	if got := h.Quantile(0.999); got != 0.517 {
		t.Fatalf("p999 of 3 obs = %g, want the exact max 0.517", got)
	}
	// Mid quantiles still answer from buckets, not the max.
	if got := h.Quantile(0.50); got >= 0.517 {
		t.Fatalf("p50 of 3 obs = %g, want < max", got)
	}
}

// TestSnapshotDeltaApplyConcurrent round-trips the delta algebra while
// the registry is being mutated from other goroutines: prev.Apply(
// cur.Delta(prev)) must reconstruct cur exactly, whatever interleaving
// produced the snapshots. Run under -race this also gates snapshot
// capture itself.
func TestSnapshotDeltaApplyConcurrent(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("c_total", "g", string(rune('a'+g))).Inc()
				reg.Gauge("g_now").Set(float64(i))
				reg.Histogram("h_seconds").Observe(float64(i%100) / 1000)
			}
		}(g)
	}

	prev := reg.Snapshot()
	for i := 0; i < 200; i++ {
		cur := reg.Snapshot()
		recon := prev.Apply(cur.Delta(prev))
		if !reflect.DeepEqual(recon, cur) {
			close(stop)
			wg.Wait()
			t.Fatalf("iteration %d: Apply(Delta) did not reconstruct the snapshot", i)
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}
