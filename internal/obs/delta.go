package obs

import "strings"

// Snapshot algebra for the fleet telemetry plane: a reporter ships only
// the series that changed since its last report (Delta), the aggregator
// overlays each delta on the node's stored view (Apply), and the merged
// fleet snapshot labels every series with its origin node (MergeByNode)
// so one scrape shows the whole deployment without series collisions.

// Clone deep-copies a snapshot.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{
		Counters:   make(map[string]float64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	return out
}

// Len reports the total number of series in the snapshot.
func (s Snapshot) Len() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Delta returns the series of s that are new or changed relative to prev.
// Counters and gauges compare by value; histograms by their whole summary
// (count/sum/quantiles), so an unchanged histogram costs nothing on the
// wire. Applying the result to prev with Apply reconstructs s, as long as
// no series was deleted in between (registries never delete series).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for k, v := range s.Counters {
		if pv, ok := prev.Counters[k]; !ok || pv != v {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if pv, ok := prev.Gauges[k]; !ok || pv != v {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if pv, ok := prev.Histograms[k]; !ok || pv != v {
			out.Histograms[k] = v
		}
	}
	return out
}

// Apply overlays delta onto s and returns the merged snapshot; s is not
// modified. Series present in delta win.
func (s Snapshot) Apply(delta Snapshot) Snapshot {
	out := s.Clone()
	for k, v := range delta.Counters {
		out.Counters[k] = v
	}
	for k, v := range delta.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range delta.Histograms {
		out.Histograms[k] = v
	}
	return out
}

// withLabelKey splices an extra label into a rendered series key:
// `name` -> `name{k="v"}` and `name{a="b"}` -> `name{a="b",k="v"}`.
// The label is appended rather than sorted into place — exposition
// formats do not require sorted label sets, and appending avoids
// re-parsing label values (which may contain commas).
func withLabelKey(key, k, v string) string {
	suffix := k + `="` + escapeLabel(v) + `"`
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:len(key)-1] + "," + suffix + "}"
	}
	return key + "{" + suffix + "}"
}

// WithLabel returns a copy of the snapshot with label k=v spliced into
// every series key.
func (s Snapshot) WithLabel(k, v string) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]float64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for key, val := range s.Counters {
		out.Counters[withLabelKey(key, k, v)] = val
	}
	for key, val := range s.Gauges {
		out.Gauges[withLabelKey(key, k, v)] = val
	}
	for key, val := range s.Histograms {
		out.Histograms[withLabelKey(key, k, v)] = val
	}
	return out
}

// MergeByNode merges per-node snapshots into one fleet view, labeling
// every series with node="name" so identical series from different nodes
// stay distinct (unlike Merge, which lets the later source win).
func MergeByNode(nodes map[string]Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, s := range nodes {
		labeled := s.WithLabel("node", name)
		for k, v := range labeled.Counters {
			out.Counters[k] = v
		}
		for k, v := range labeled.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range labeled.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}
