package obs

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for code that sleeps or sets deadlines, so the
// retry/reconnect machinery can run against a deterministic fake in
// tests instead of burning wall-clock seconds.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}

// RealClock delegates to the time package.
type RealClock struct{}

func (RealClock) Now() time.Time                         { return time.Now() }
func (RealClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Real is the process-wide wall clock.
var Real Clock = RealClock{}

// FakeClock is a manually advanced clock. Goroutines blocked in Sleep
// or on an After channel wake only when Advance moves the clock past
// their deadline. A FakeClock with AutoAdvance started behaves like an
// infinitely fast world: every new waiter is immediately released by
// jumping the clock to its deadline, in deadline order.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
	newWait chan struct{} // signalled (non-blocking) when a waiter parks
	stop    chan struct{}
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFakeClock starts the fake at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{
		now:     time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
		newWait: make(chan struct{}, 1),
	}
}

func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *FakeClock) Sleep(d time.Duration) { <-f.After(d) }

func (f *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	if d <= 0 {
		//lint:ignore blockheld ch is freshly made with capacity 1; the send cannot block
		ch <- f.now
		f.mu.Unlock()
		return ch
	}
	f.waiters = append(f.waiters, &fakeWaiter{deadline: f.now.Add(d), ch: ch})
	f.mu.Unlock()
	select {
	case f.newWait <- struct{}{}:
	default:
	}
	return ch
}

// Advance moves the clock forward, releasing every waiter whose
// deadline is reached.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	//lint:ignore blockheld every waiter channel is buffered(1) and fired at most once; the sends cannot block
	f.fireLocked()
	f.mu.Unlock()
}

func (f *FakeClock) fireLocked() {
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.deadline.After(f.now) {
			w.ch <- f.now
		} else {
			kept = append(kept, w)
		}
	}
	f.waiters = kept
}

// Waiters reports how many goroutines are currently parked on the clock.
func (f *FakeClock) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// AutoAdvance spawns a goroutine that, whenever at least one waiter is
// parked, jumps the clock to the earliest pending deadline. This lets
// sleep-heavy code (retry backoff, attempt timers) run at full speed
// while preserving deadline ordering. Call the returned stop function
// when done.
func (f *FakeClock) AutoAdvance() (stop func()) {
	f.mu.Lock()
	if f.stop != nil {
		f.mu.Unlock()
		return func() {}
	}
	done := make(chan struct{})
	f.stop = done
	f.mu.Unlock()

	go func() {
		for {
			select {
			case <-done:
				return
			case <-f.newWait:
			}
			for {
				f.mu.Lock()
				if len(f.waiters) == 0 {
					f.mu.Unlock()
					break
				}
				sort.Slice(f.waiters, func(i, j int) bool {
					return f.waiters[i].deadline.Before(f.waiters[j].deadline)
				})
				f.now = f.waiters[0].deadline
				f.fireLocked()
				f.mu.Unlock()
				// Give the released goroutine a moment to park its next
				// sleep before we check for more waiters.
				select {
				case <-done:
					return
				case <-f.newWait:
				case <-time.After(time.Millisecond):
				}
			}
		}
	}()
	return func() {
		f.mu.Lock()
		if f.stop == done {
			f.stop = nil
		}
		f.mu.Unlock()
		close(done)
	}
}
