package obs

import "math"

// Trace sampling. At city-scale rates an unsampled tracer either evicts
// everything silently or taxes every envelope on the hot path. The
// sampler makes the trade explicit: a deterministic head decision per
// TraceID (every node keeps or drops the *same* traces, so cross-node
// stitching still works without coordination), plus a tail-keep escape
// hatch — error, shed, breaker-open, and p99-slow traces are always
// retained, promoted out of a short recent-span buffer after the fact.
// The sampled/dropped ledger means loss is never silent: the counters
// say exactly how many spans each decision cost.

// Sampler is a deterministic head sampler keyed on TraceID. The zero
// rate (SamplerOff) disables span capture entirely — not even the
// tail-keep buffer is fed — which is the baseline the overhead
// benchmark compares against. A nil *Sampler means "no sampling":
// every span is captured (the pre-sampling v1 behavior).
type Sampler struct {
	rate      float64
	threshold uint64
}

// NewSampler returns a sampler keeping approximately rate (clamped to
// [0,1]) of all traces. rate >= 1 keeps everything; rate <= 0 is
// equivalent to SamplerOff.
func NewSampler(rate float64) *Sampler {
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s := &Sampler{rate: rate}
	if rate >= 1 {
		s.threshold = math.MaxUint64
	} else {
		s.threshold = uint64(rate * float64(math.MaxUint64))
	}
	return s
}

// SamplerOff captures nothing: the cheapest possible Record path, used
// as the overhead-benchmark baseline and as the "black out tracing"
// switch. Tail-keep does not apply — off is off.
var SamplerOff = NewSampler(0)

// Rate reports the configured keep fraction.
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 1
	}
	return s.rate
}

// Off reports whether the sampler blacks out capture entirely.
func (s *Sampler) Off() bool { return s != nil && s.threshold == 0 }

// Sampled reports the deterministic head decision for a trace: the
// TraceID is mixed through splitmix64 and compared against the rate
// threshold, so the same trace gets the same verdict on every node and
// on every hop. A nil sampler keeps everything. It sits on every
// traced Send, so it must stay allocation-free.
//
//lint:hot budget=0
func (s *Sampler) Sampled(trace uint64) bool {
	if s == nil {
		return true
	}
	if s.threshold == math.MaxUint64 {
		return true
	}
	if s.threshold == 0 {
		return false
	}
	return splitmix64(trace) < s.threshold
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a cheap, strong
// bit mixer. NewTraceID hands out sequential low bits, so hashing is
// what makes "hash < threshold" behave like a uniform coin flip.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
