package stream

import (
	"fmt"
	"math"
	"sort"

	"pervasivegrid/internal/ml"
)

// MaxFourierDim bounds the binary feature dimension: the Walsh spectrum is
// computed over the full 2^d domain.
const MaxFourierDim = 16

// Spectrum is the Walsh–Fourier representation of a boolean classifier
// f: {0,1}^d -> {-1,+1}. Coefficient w_S (keyed by the bitmask S) is
// (1/2^d) Σ_x f(x)·(-1)^{x·S}. A truncated spectrum keeps only the
// dominant coefficients — the compact object distributed sites ship
// instead of raw data or whole trees.
type Spectrum struct {
	D    int
	Coef map[uint32]float64
}

// classifierSign evaluates a 0/1 classifier as ±1.
func classifierSign(predict func([]float64) int, x []float64) float64 {
	if predict(x) != 0 {
		return 1
	}
	return -1
}

// FunctionSpectrum computes the exact Walsh spectrum of any 0/1 classifier
// over d binary features using the fast Walsh–Hadamard transform
// (O(d·2^d)).
func FunctionSpectrum(predict func([]float64) int, d int) (*Spectrum, error) {
	if d < 1 || d > MaxFourierDim {
		return nil, fmt.Errorf("stream: fourier dimension %d outside [1,%d]", d, MaxFourierDim)
	}
	n := 1 << d
	f := make([]float64, n)
	x := make([]float64, d)
	for i := 0; i < n; i++ {
		for b := 0; b < d; b++ {
			x[b] = float64((i >> b) & 1)
		}
		f[i] = classifierSign(predict, x)
	}
	// In-place FWHT.
	for length := 1; length < n; length <<= 1 {
		for i := 0; i < n; i += length << 1 {
			for j := i; j < i+length; j++ {
				a, b := f[j], f[j+length]
				f[j], f[j+length] = a+b, a-b
			}
		}
	}
	s := &Spectrum{D: d, Coef: make(map[uint32]float64)}
	inv := 1 / float64(n)
	for i, v := range f {
		if c := v * inv; c != 0 {
			s.Coef[uint32(i)] = c
		}
	}
	return s, nil
}

// TreeSpectrum computes the spectrum of a trained decision tree over d
// binary features.
func TreeSpectrum(t *ml.DecisionTree, d int) (*Spectrum, error) {
	if t == nil {
		return nil, fmt.Errorf("stream: nil tree")
	}
	return FunctionSpectrum(t.Predict, d)
}

// Truncate returns a copy keeping the k coefficients of largest magnitude
// ("choosing the dominant components"). k <= 0 keeps everything.
func (s *Spectrum) Truncate(k int) *Spectrum {
	out := &Spectrum{D: s.D, Coef: make(map[uint32]float64)}
	if k <= 0 || k >= len(s.Coef) {
		for m, c := range s.Coef {
			out.Coef[m] = c
		}
		return out
	}
	type mc struct {
		m uint32
		c float64
	}
	all := make([]mc, 0, len(s.Coef))
	for m, c := range s.Coef {
		all = append(all, mc{m, c})
	}
	sort.Slice(all, func(i, j int) bool {
		ai, aj := math.Abs(all[i].c), math.Abs(all[j].c)
		if ai != aj {
			return ai > aj
		}
		return all[i].m < all[j].m
	})
	for _, e := range all[:k] {
		out.Coef[e.m] = e.c
	}
	return out
}

// Eval reconstructs f(x) = Σ_S w_S·(-1)^{x·S} from the (possibly
// truncated) spectrum.
func (s *Spectrum) Eval(x []float64) float64 {
	var xm uint32
	for b := 0; b < s.D && b < len(x); b++ {
		if x[b] >= 0.5 {
			xm |= 1 << b
		}
	}
	total := 0.0
	for m, c := range s.Coef {
		// parity of bits in m&xm decides the character sign.
		if parity(m&xm) == 1 {
			total -= c
		} else {
			total += c
		}
	}
	return total
}

// Classify thresholds Eval at zero, returning a 0/1 label.
func (s *Spectrum) Classify(x []float64) int {
	if s.Eval(x) >= 0 {
		return 1
	}
	return 0
}

func parity(v uint32) int {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return int(v & 1)
}

// WireBytes estimates the serialized size: 4-byte mask + 8-byte coefficient
// per entry, the number a site ships to the combiner.
func (s *Spectrum) WireBytes() int { return len(s.Coef) * 12 }

// Combine averages spectra with the given weights (nil = uniform),
// producing the ensemble classifier's spectrum. Spectra must share the same
// dimension.
func Combine(spectra []*Spectrum, weights []float64) (*Spectrum, error) {
	if len(spectra) == 0 {
		return nil, fmt.Errorf("stream: combine needs at least one spectrum")
	}
	d := spectra[0].D
	if weights == nil {
		weights = make([]float64, len(spectra))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(spectra) {
		return nil, fmt.Errorf("stream: %d weights for %d spectra", len(weights), len(spectra))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stream: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("stream: all-zero weights")
	}
	out := &Spectrum{D: d, Coef: make(map[uint32]float64)}
	for i, s := range spectra {
		if s.D != d {
			return nil, fmt.Errorf("stream: dimension mismatch %d vs %d", s.D, d)
		}
		w := weights[i] / total
		for m, c := range s.Coef {
			out.Coef[m] += w * c
		}
	}
	return out, nil
}

// EnsembleMiner implements the paper's stream-analysis pipeline: each
// arriving data block trains a decision tree, its spectrum is truncated to
// TopK dominant components, and Classify answers from the combined
// ensemble.
type EnsembleMiner struct {
	// D is the binary feature dimension.
	D int
	// TopK bounds each block's shipped coefficients (0 = all).
	TopK int
	// TreeCfg configures the per-block trees.
	TreeCfg ml.TreeConfig

	spectra  []*Spectrum
	weights  []float64
	combined *Spectrum
}

// NewEnsembleMiner validates the dimensions.
func NewEnsembleMiner(d, topK int) (*EnsembleMiner, error) {
	if d < 1 || d > MaxFourierDim {
		return nil, fmt.Errorf("stream: dimension %d outside [1,%d]", d, MaxFourierDim)
	}
	return &EnsembleMiner{D: d, TopK: topK, TreeCfg: ml.TreeConfig{MaxDepth: 8}}, nil
}

// AddBlock trains a tree on one data block and folds its truncated spectrum
// into the ensemble, weighted by block size. It returns the bytes that
// block contributed on the wire.
func (e *EnsembleMiner) AddBlock(d ml.Dataset) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if len(d.X[0]) != e.D {
		return 0, fmt.Errorf("stream: block has %d features, miner expects %d", len(d.X[0]), e.D)
	}
	tree, err := ml.TrainTree(d, e.TreeCfg)
	if err != nil {
		return 0, err
	}
	spec, err := TreeSpectrum(tree, e.D)
	if err != nil {
		return 0, err
	}
	spec = spec.Truncate(e.TopK)
	e.spectra = append(e.spectra, spec)
	e.weights = append(e.weights, float64(d.Len()))
	e.combined = nil
	return spec.WireBytes(), nil
}

// Blocks reports how many blocks have been folded in.
func (e *EnsembleMiner) Blocks() int { return len(e.spectra) }

// Combined returns the ensemble spectrum, building it lazily.
func (e *EnsembleMiner) Combined() (*Spectrum, error) {
	if e.combined != nil {
		return e.combined, nil
	}
	c, err := Combine(e.spectra, e.weights)
	if err != nil {
		return nil, err
	}
	e.combined = c
	return c, nil
}

// Classify answers from the combined ensemble.
func (e *EnsembleMiner) Classify(x []float64) (int, error) {
	c, err := e.Combined()
	if err != nil {
		return 0, err
	}
	return c.Classify(x), nil
}

// WireBytes sums the bytes every block shipped.
func (e *EnsembleMiner) WireBytes() int {
	total := 0
	for _, s := range e.spectra {
		total += s.WireBytes()
	}
	return total
}
