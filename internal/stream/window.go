// Package stream provides data-stream processing for the pervasive grid:
// windowed and non-blocking operators over sensor streams (the role Fjords
// plays in the related work) and the paper's worked stream-mining example —
// ensembles of decision trees whose Walsh–Fourier spectra are truncated to
// their dominant components and combined into a single classifier, so that
// distributed data sources ship compact spectra instead of raw data.
package stream

import (
	"fmt"
	"math"

	"pervasivegrid/internal/sensornet"
)

// Element is one stream item: a timestamped value from a source.
type Element struct {
	Source int
	T      float64
	V      float64
}

// WindowResult is the aggregate of one closed window.
type WindowResult struct {
	// Start and End bound the window in stream time: [Start, End).
	Start, End float64
	// Agg holds the decomposable aggregate state of the window.
	Agg sensornet.Partial
}

// TumblingWindow groups elements into fixed, non-overlapping time windows
// and emits one aggregate per closed window. Elements must arrive in
// non-decreasing time order per Push; late elements are counted and
// dropped.
type TumblingWindow struct {
	Size float64

	start  float64
	opened bool
	cur    sensornet.Partial
	late   int
	out    []WindowResult
}

// NewTumblingWindow creates a window of the given size in stream-time
// units.
func NewTumblingWindow(size float64) (*TumblingWindow, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: window size must be positive, got %v", size)
	}
	return &TumblingWindow{Size: size}, nil
}

// Push feeds one element; any windows that close as time advances become
// available from Results.
func (w *TumblingWindow) Push(e Element) {
	if !w.opened {
		w.start = math.Floor(e.T/w.Size) * w.Size
		w.opened = true
	}
	if e.T < w.start {
		w.late++
		return
	}
	for e.T >= w.start+w.Size {
		if w.cur.Count > 0 {
			w.out = append(w.out, WindowResult{Start: w.start, End: w.start + w.Size, Agg: w.cur})
			w.cur = sensornet.Partial{}
		}
		w.start += w.Size
	}
	w.cur.Add(e.V)
}

// Flush force-closes the open window (used at stream end).
func (w *TumblingWindow) Flush() {
	if w.opened && w.cur.Count > 0 {
		w.out = append(w.out, WindowResult{Start: w.start, End: w.start + w.Size, Agg: w.cur})
		w.cur = sensornet.Partial{}
	}
}

// Results drains the closed windows produced so far.
func (w *TumblingWindow) Results() []WindowResult {
	out := w.out
	w.out = nil
	return out
}

// Late reports elements dropped for arriving before the current window.
func (w *TumblingWindow) Late() int { return w.late }

// SlidingStats maintains count/mean/min/max over the most recent N
// elements — the bounded-memory per-sensor summary a handheld keeps.
type SlidingStats struct {
	N   int
	buf []float64
	pos int
	n   int
}

// NewSlidingStats creates a sliding window over the last n elements.
func NewSlidingStats(n int) (*SlidingStats, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: sliding window needs n > 0, got %d", n)
	}
	return &SlidingStats{N: n, buf: make([]float64, n)}, nil
}

// Push adds a value, evicting the oldest when full.
func (s *SlidingStats) Push(v float64) {
	s.buf[s.pos] = v
	s.pos = (s.pos + 1) % s.N
	if s.n < s.N {
		s.n++
	}
}

// Snapshot returns the current window aggregate.
func (s *SlidingStats) Snapshot() sensornet.Partial {
	var p sensornet.Partial
	for i := 0; i < s.n; i++ {
		p.Add(s.buf[i])
	}
	return p
}

// Merge is the Fjords-style non-blocking merge: it polls any number of
// push-based input queues and emits whatever is available without blocking
// on quiet sources. Each call drains at most budget elements (0 = all
// currently queued).
type Merge struct {
	inputs []chan Element
}

// NewMerge builds a merge over n input queues of the given buffer depth.
func NewMerge(n, depth int) (*Merge, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: merge needs inputs, got %d", n)
	}
	if depth <= 0 {
		depth = 16
	}
	m := &Merge{inputs: make([]chan Element, n)}
	for i := range m.inputs {
		m.inputs[i] = make(chan Element, depth)
	}
	return m, nil
}

// Offer pushes an element into input i without blocking; it reports false
// when the queue is full (the sensor-proxy backpressure signal).
func (m *Merge) Offer(i int, e Element) bool {
	if i < 0 || i >= len(m.inputs) {
		return false
	}
	select {
	case m.inputs[i] <- e:
		return true
	default:
		return false
	}
}

// Poll gathers available elements round-robin without blocking. budget 0
// drains everything currently queued.
func (m *Merge) Poll(budget int) []Element {
	var out []Element
	for {
		progress := false
		for _, ch := range m.inputs {
			select {
			case e := <-ch:
				out = append(out, e)
				progress = true
				if budget > 0 && len(out) >= budget {
					return out
				}
			default:
			}
		}
		if !progress {
			return out
		}
	}
}
