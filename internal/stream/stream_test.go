package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pervasivegrid/internal/ml"
)

func TestTumblingWindowBasic(t *testing.T) {
	w, err := NewTumblingWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Element{
		{T: 1, V: 5}, {T: 4, V: 7}, {T: 11, V: 100}, {T: 25, V: 1},
	} {
		w.Push(e)
	}
	got := w.Results()
	if len(got) != 2 {
		t.Fatalf("closed windows = %d, want 2", len(got))
	}
	if got[0].Agg.Final(0 /* sum */) != 12 || got[0].Start != 0 || got[0].End != 10 {
		t.Fatalf("window 0 = %+v", got[0])
	}
	if got[1].Agg.Count != 1 || got[1].Agg.Max != 100 {
		t.Fatalf("window 1 = %+v", got[1])
	}
	w.Flush()
	final := w.Results()
	if len(final) != 1 || final[0].Agg.Sum != 1 {
		t.Fatalf("flush = %+v", final)
	}
}

func TestTumblingWindowLateElements(t *testing.T) {
	w, err := NewTumblingWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	w.Push(Element{T: 35, V: 1})
	w.Push(Element{T: 5, V: 2}) // late: before the open window
	if w.Late() != 1 {
		t.Fatalf("late = %d, want 1", w.Late())
	}
}

func TestTumblingWindowGap(t *testing.T) {
	w, _ := NewTumblingWindow(1)
	w.Push(Element{T: 0.5, V: 1})
	w.Push(Element{T: 5.5, V: 2}) // 4 empty windows skipped
	got := w.Results()
	if len(got) != 1 {
		t.Fatalf("windows emitted = %d, want 1 (empty windows not emitted as data)", len(got))
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewTumblingWindow(0); err == nil {
		t.Fatal("zero window should fail")
	}
	if _, err := NewSlidingStats(0); err == nil {
		t.Fatal("zero sliding window should fail")
	}
	if _, err := NewMerge(0, 4); err == nil {
		t.Fatal("empty merge should fail")
	}
}

func TestSlidingStats(t *testing.T) {
	s, err := NewSlidingStats(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Push(v)
	}
	p := s.Snapshot()
	if p.Count != 3 || p.Min != 3 || p.Max != 5 || p.Sum != 12 {
		t.Fatalf("snapshot = %+v, want last 3 values", p)
	}
}

func TestMergeNonBlocking(t *testing.T) {
	m, err := NewMerge(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One quiet source must not block the others — the Fjords property.
	if !m.Offer(0, Element{Source: 0, V: 1}) {
		t.Fatal("offer failed")
	}
	if !m.Offer(2, Element{Source: 2, V: 3}) {
		t.Fatal("offer failed")
	}
	got := m.Poll(0)
	if len(got) != 2 {
		t.Fatalf("polled %d, want 2", len(got))
	}
	if more := m.Poll(0); len(more) != 0 {
		t.Fatal("second poll should be empty")
	}
}

func TestMergeBackpressure(t *testing.T) {
	m, _ := NewMerge(1, 2)
	if !m.Offer(0, Element{}) || !m.Offer(0, Element{}) {
		t.Fatal("offers within capacity failed")
	}
	if m.Offer(0, Element{}) {
		t.Fatal("offer past capacity should report false")
	}
	if m.Offer(5, Element{}) {
		t.Fatal("offer to invalid input should report false")
	}
}

func TestMergeBudget(t *testing.T) {
	m, _ := NewMerge(2, 8)
	for i := 0; i < 6; i++ {
		m.Offer(i%2, Element{V: float64(i)})
	}
	got := m.Poll(4)
	if len(got) != 4 {
		t.Fatalf("budgeted poll = %d, want 4", len(got))
	}
}

// parityPredict is the d-bit parity function, the classic hard case whose
// spectrum is a single coefficient at the full mask.
func parityPredict(d int) func([]float64) int {
	return func(x []float64) int {
		p := 0
		for b := 0; b < d; b++ {
			if x[b] >= 0.5 {
				p ^= 1
			}
		}
		return p
	}
}

func TestFunctionSpectrumParity(t *testing.T) {
	d := 4
	s, err := FunctionSpectrum(parityPredict(d), d)
	if err != nil {
		t.Fatal(err)
	}
	// Parity maps to exactly one coefficient: mask 1111 with value -1
	// (since parity=1 -> +1 = -ψ_full under our 0/1→±1 mapping).
	if len(s.Coef) != 1 {
		t.Fatalf("parity spectrum has %d coefficients, want 1: %v", len(s.Coef), s.Coef)
	}
	c, ok := s.Coef[uint32(1<<d)-1]
	if !ok || math.Abs(math.Abs(c)-1) > 1e-12 {
		t.Fatalf("full-mask coefficient = %v ok=%v", c, ok)
	}
}

func TestSpectrumReconstructsFunction(t *testing.T) {
	d := 6
	rng := rand.New(rand.NewSource(9))
	table := make([]int, 1<<d)
	for i := range table {
		table[i] = rng.Intn(2)
	}
	predict := func(x []float64) int {
		idx := 0
		for b := 0; b < d; b++ {
			if x[b] >= 0.5 {
				idx |= 1 << b
			}
		}
		return table[idx]
	}
	s, err := FunctionSpectrum(predict, d)
	if err != nil {
		t.Fatal(err)
	}
	// Full spectrum must reconstruct the function exactly.
	x := make([]float64, d)
	for i := 0; i < 1<<d; i++ {
		for b := 0; b < d; b++ {
			x[b] = float64((i >> b) & 1)
		}
		if s.Classify(x) != table[i] {
			t.Fatalf("reconstruction differs at %06b", i)
		}
	}
}

func TestSpectrumParseval(t *testing.T) {
	// Property: Σ w_S² = 1 for ±1-valued functions (Parseval).
	f := func(seed int64) bool {
		d := 5
		rng := rand.New(rand.NewSource(seed))
		table := make([]int, 1<<d)
		for i := range table {
			table[i] = rng.Intn(2)
		}
		predict := func(x []float64) int {
			idx := 0
			for b := 0; b < d; b++ {
				if x[b] >= 0.5 {
					idx |= 1 << b
				}
			}
			return table[idx]
		}
		s, err := FunctionSpectrum(predict, d)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, c := range s.Coef {
			sum += c * c
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateKeepsDominant(t *testing.T) {
	d := 4
	s, err := FunctionSpectrum(func(x []float64) int {
		if x[0] >= 0.5 {
			return 1
		}
		return 0
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	// f depends only on x0: spectrum is one coefficient at mask 0001.
	tr := s.Truncate(1)
	if len(tr.Coef) != 1 {
		t.Fatalf("truncated size = %d", len(tr.Coef))
	}
	if _, ok := tr.Coef[1]; !ok {
		t.Fatalf("dominant mask missing: %v", tr.Coef)
	}
	// Truncate with k >= len keeps everything.
	if got := s.Truncate(100); len(got.Coef) != len(s.Coef) {
		t.Fatal("over-truncation changed size")
	}
	if got := s.Truncate(0); len(got.Coef) != len(s.Coef) {
		t.Fatal("k=0 should keep everything")
	}
}

func TestCombineValidation(t *testing.T) {
	if _, err := Combine(nil, nil); err == nil {
		t.Fatal("empty combine should fail")
	}
	a, _ := FunctionSpectrum(parityPredict(3), 3)
	b, _ := FunctionSpectrum(parityPredict(4), 4)
	if _, err := Combine([]*Spectrum{a, b}, nil); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := Combine([]*Spectrum{a}, []float64{1, 2}); err == nil {
		t.Fatal("weight count mismatch should fail")
	}
	if _, err := Combine([]*Spectrum{a}, []float64{-1}); err == nil {
		t.Fatal("negative weight should fail")
	}
	if _, err := Combine([]*Spectrum{a}, []float64{0}); err == nil {
		t.Fatal("zero weights should fail")
	}
}

func TestCombineAgreeingSpectra(t *testing.T) {
	d := 4
	a, _ := FunctionSpectrum(parityPredict(d), d)
	b, _ := FunctionSpectrum(parityPredict(d), d)
	c, err := Combine([]*Spectrum{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0, 0, 0}
	if c.Classify(x) != parityPredict(d)(x) {
		t.Fatal("combined identical spectra should agree with the source")
	}
}

func TestFourierDimensionBounds(t *testing.T) {
	if _, err := FunctionSpectrum(parityPredict(1), 0); err == nil {
		t.Fatal("d=0 should fail")
	}
	if _, err := FunctionSpectrum(parityPredict(1), MaxFourierDim+1); err == nil {
		t.Fatal("too-large d should fail")
	}
	if _, err := TreeSpectrum(nil, 4); err == nil {
		t.Fatal("nil tree should fail")
	}
	if _, err := NewEnsembleMiner(0, 4); err == nil {
		t.Fatal("bad miner dimension should fail")
	}
}

// blockFor synthesises a labelled block from a boolean concept with label
// noise.
func blockFor(rng *rand.Rand, d, n int, concept func([]float64) int, noise float64) ml.Dataset {
	var ds ml.Dataset
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for b := range x {
			x[b] = float64(rng.Intn(2))
		}
		y := concept(x)
		if rng.Float64() < noise {
			y = 1 - y
		}
		ds.Add(x, y)
	}
	return ds
}

func TestEnsembleMinerLearnsConcept(t *testing.T) {
	d := 8
	concept := func(x []float64) int {
		if x[0] >= 0.5 && x[3] >= 0.5 {
			return 1
		}
		return 0
	}
	rng := rand.New(rand.NewSource(17))
	miner, err := NewEnsembleMiner(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	for block := 0; block < 6; block++ {
		if _, err := miner.AddBlock(blockFor(rng, d, 200, concept, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	if miner.Blocks() != 6 {
		t.Fatalf("blocks = %d", miner.Blocks())
	}
	// Evaluate on clean data.
	hits := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		x := make([]float64, d)
		for b := range x {
			x[b] = float64(rng.Intn(2))
		}
		got, err := miner.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if got == concept(x) {
			hits++
		}
	}
	if acc := float64(hits) / trials; acc < 0.9 {
		t.Fatalf("ensemble accuracy = %v, want >= 0.9", acc)
	}
}

func TestEnsembleCommunicationSavings(t *testing.T) {
	// The point of shipping truncated spectra: bytes on the wire are far
	// below shipping the raw blocks.
	d := 10
	concept := func(x []float64) int {
		if x[1] >= 0.5 {
			return 1
		}
		return 0
	}
	rng := rand.New(rand.NewSource(3))
	miner, err := NewEnsembleMiner(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := 0
	blockSize := 500
	for block := 0; block < 4; block++ {
		ds := blockFor(rng, d, blockSize, concept, 0.02)
		rawBytes += blockSize * (d + 1) // one byte per binary feature + label
		if _, err := miner.AddBlock(ds); err != nil {
			t.Fatal(err)
		}
	}
	if miner.WireBytes() >= rawBytes/10 {
		t.Fatalf("spectra bytes %d not ≪ raw bytes %d", miner.WireBytes(), rawBytes)
	}
}

func TestEnsembleMinerBlockValidation(t *testing.T) {
	miner, _ := NewEnsembleMiner(4, 4)
	var wrong ml.Dataset
	wrong.Add([]float64{1, 0}, 1) // 2 features, miner wants 4
	if _, err := miner.AddBlock(wrong); err == nil {
		t.Fatal("wrong feature width should fail")
	}
	if _, err := miner.AddBlock(ml.Dataset{}); err == nil {
		t.Fatal("empty block should fail")
	}
	if _, err := miner.Classify([]float64{0, 0, 0, 0}); err == nil {
		t.Fatal("classify with no blocks should fail")
	}
}

func BenchmarkTreeSpectrum10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 10
	ds := blockFor(rng, d, 300, parityPredict(3), 0)
	tree, err := ml.TrainTree(ds, ml.TreeConfig{MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TreeSpectrum(tree, d); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAnomalyDetectorValidation(t *testing.T) {
	if _, err := NewAnomalyDetector(0, 3); err == nil {
		t.Fatal("lambda 0 should fail")
	}
	if _, err := NewAnomalyDetector(1.5, 3); err == nil {
		t.Fatal("lambda > 1 should fail")
	}
	a, err := NewAnomalyDetector(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold != 3 {
		t.Fatal("default threshold should be 3")
	}
}

func TestAnomalyDetectorFlagsSpike(t *testing.T) {
	a, err := NewAnomalyDetector(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	falsePositives := 0
	for i := 0; i < 200; i++ {
		if anom, _ := a.Observe(20 + rng.NormFloat64()); anom {
			falsePositives++
		}
	}
	if falsePositives > 5 {
		t.Fatalf("false positives = %d on a stationary stream", falsePositives)
	}
	anom, z := a.Observe(500) // fire!
	if !anom {
		t.Fatal("spike not flagged")
	}
	if z < 10 {
		t.Fatalf("spike z = %v, want large", z)
	}
	if a.Flagged() < 1 {
		t.Fatal("flag counter not incremented")
	}
}

func TestAnomalyDetectorWarmup(t *testing.T) {
	a, _ := NewAnomalyDetector(0.2, 3)
	// Even wild values during warmup are not flagged.
	for _, v := range []float64{0, 1000, -1000, 500, 2, 3, 4, 5, 6, 7} {
		if anom, _ := a.Observe(v); anom {
			t.Fatal("warmup reading flagged")
		}
	}
	if a.Seen() != 10 {
		t.Fatalf("seen = %d", a.Seen())
	}
}

func TestAnomalyDetectorAdaptsToLevelShift(t *testing.T) {
	a, _ := NewAnomalyDetector(0.2, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a.Observe(10 + rng.NormFloat64()*0.5)
	}
	// A persistent level shift: first readings flag, but the detector
	// adapts and stops flagging.
	flagsEarly, flagsLate := 0, 0
	for i := 0; i < 300; i++ {
		anom, _ := a.Observe(14 + rng.NormFloat64()*0.5)
		if i < 30 && anom {
			flagsEarly++
		}
		if i >= 270 && anom {
			flagsLate++
		}
	}
	if flagsEarly == 0 {
		t.Fatal("level shift not noticed at all")
	}
	if flagsLate > 3 {
		t.Fatalf("detector failed to adapt: %d late flags", flagsLate)
	}
	mean, _ := a.Stats()
	if mean < 12 {
		t.Fatalf("mean = %v, should have tracked the shift", mean)
	}
}
