package stream

import (
	"fmt"
	"math"
)

// AnomalyDetector flags readings that deviate from a stream's recent
// behaviour — the paper's defense scenario asks for "discovery of anomalous
// patterns" and "detection of any anomaly" in sensor streams. It keeps an
// exponentially weighted mean and variance and flags z-scores beyond a
// threshold, so it runs in O(1) memory on a constrained node.
type AnomalyDetector struct {
	// Lambda is the EWMA decay in (0, 1]; smaller adapts slower.
	Lambda float64
	// Threshold is the |z| beyond which a reading is anomalous
	// (default 3).
	Threshold float64
	// Warmup is how many readings to absorb before flagging (default 10).
	Warmup int

	n        int
	mean     float64
	variance float64
	flagged  int
}

// NewAnomalyDetector validates the decay parameter.
func NewAnomalyDetector(lambda, threshold float64) (*AnomalyDetector, error) {
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("stream: lambda %v outside (0,1]", lambda)
	}
	if threshold <= 0 {
		threshold = 3
	}
	return &AnomalyDetector{Lambda: lambda, Threshold: threshold, Warmup: 10}, nil
}

// Observe folds in a reading and reports whether it is anomalous together
// with its z-score against the pre-update statistics.
func (a *AnomalyDetector) Observe(v float64) (anomalous bool, z float64) {
	if a.n >= a.Warmup && a.variance > 0 {
		z = (v - a.mean) / math.Sqrt(a.variance)
		if math.Abs(z) > a.Threshold {
			anomalous = true
			a.flagged++
			// Anomalies update the statistics with a reduced weight so
			// a burst does not immediately become the new normal.
			a.update(v, a.Lambda*0.1)
			a.n++
			return anomalous, z
		}
	}
	a.update(v, a.Lambda)
	a.n++
	return anomalous, z
}

func (a *AnomalyDetector) update(v, lambda float64) {
	if a.n == 0 {
		a.mean = v
		a.variance = 0
		return
	}
	d := v - a.mean
	a.mean += lambda * d
	a.variance = (1-lambda)*(a.variance) + lambda*d*d
}

// Stats reports the current EWMA mean and variance.
func (a *AnomalyDetector) Stats() (mean, variance float64) { return a.mean, a.variance }

// Flagged reports how many anomalies have been raised.
func (a *AnomalyDetector) Flagged() int { return a.flagged }

// Seen reports how many readings have been observed.
func (a *AnomalyDetector) Seen() int { return a.n }
