package simevent

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	times := []Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		if _, err := k.Schedule(at, "ev", func() { got = append(got, at) }); err != nil {
			t.Fatalf("Schedule(%v): %v", at, err)
		}
	}
	n := k.RunAll()
	if n != 5 {
		t.Fatalf("RunAll executed %d events, want 5", n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want 5", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := k.Schedule(7, "tie", func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending insertion order", got)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	k := NewKernel()
	if _, err := k.Schedule(10, "ev", func() {}); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	if _, err := k.Schedule(5, "past", func() {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	k := NewKernel()
	if _, err := k.Schedule(1, "nil", nil); err == nil {
		t.Fatal("nil handler should be rejected")
	}
}

func TestNegativeDelayRejected(t *testing.T) {
	k := NewKernel()
	if _, err := k.After(-1, "neg", func() {}); err == nil {
		t.Fatal("negative delay should be rejected")
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	id, err := k.Schedule(1, "cancelled", func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !k.Cancel(id) {
		t.Fatal("Cancel reported false for pending event")
	}
	if k.Cancel(id) {
		t.Fatal("double Cancel reported true")
	}
	k.RunAll()
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if k.Executed() != 0 {
		t.Fatalf("Executed = %d, want 0", k.Executed())
	}
}

func TestRunHorizon(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		if _, err := k.Schedule(at, "ev", func() { got = append(got, at) }); err != nil {
			t.Fatal(err)
		}
	}
	n := k.Run(3)
	if n != 3 {
		t.Fatalf("Run(3) executed %d, want 3", n)
	}
	if k.Now() != 3 {
		t.Fatalf("clock = %v, want 3 (horizon)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.RunAll()
	if len(got) != 4 {
		t.Fatalf("total events = %d, want 4", len(got))
	}
}

func TestRunHorizonAdvancesThroughQuietPeriod(t *testing.T) {
	k := NewKernel()
	if _, err := k.Schedule(1, "ev", func() {}); err != nil {
		t.Fatal(err)
	}
	k.Run(100)
	if k.Now() != 100 {
		t.Fatalf("clock = %v, want horizon 100", k.Now())
	}
}

func TestStopHaltsExecution(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		if _, err := k.Schedule(Time(i), "ev", func() {
			count++
			if count == 3 {
				k.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.RunAll()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if _, err := k.Schedule(100, "late", func() {}); err != ErrStopped {
		t.Fatalf("Schedule after Stop: err = %v, want ErrStopped", err)
	}
}

func TestHandlerSchedulesMoreEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			if _, err := k.After(1, "recurse", recurse); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	if _, err := k.After(1, "recurse", recurse); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want 5", k.Now())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	k := NewKernel()
	var stamps []Time
	tk := NewTicker(k, 2, "tick", func(now Time) { stamps = append(stamps, now) })
	tk.MaxFires = 4
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	want := []Time{2, 4, 6, 8}
	if len(stamps) != len(want) {
		t.Fatalf("fired %d times, want %d", len(stamps), len(want))
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestTickerStopMidway(t *testing.T) {
	k := NewKernel()
	var tk *Ticker
	fires := 0
	tk = NewTicker(k, 1, "tick", func(Time) {
		fires++
		if fires == 3 {
			tk.Stop()
		}
	})
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	if fires != 3 {
		t.Fatalf("fires = %d, want 3", fires)
	}
	if tk.Fires() != 3 {
		t.Fatalf("Fires() = %d, want 3", tk.Fires())
	}
}

func TestTickerDoubleStartIsNoOp(t *testing.T) {
	k := NewKernel()
	fires := 0
	tk := NewTicker(k, 1, "tick", func(Time) { fires++ })
	tk.MaxFires = 2
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	k.RunAll()
	if fires != 2 {
		t.Fatalf("fires = %d, want 2 (double Start must not double-fire)", fires)
	}
}

// Property: for any set of random timestamps, execution order is sorted and
// the executed count equals the scheduled count.
func TestPropertyExecutionSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := NewKernel()
		var got []Time
		for _, r := range raw {
			at := Time(r)
			if _, err := k.Schedule(at, "p", func() { got = append(got, at) }); err != nil {
				return false
			}
		}
		k.RunAll()
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the uncancelled
// events to run.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		k := NewKernel()
		n := 1 + rng.Intn(100)
		ran := 0
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			id, err := k.Schedule(Time(rng.Intn(50)), "p", func() { ran++ })
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		cancelled := 0
		for _, id := range ids {
			if rng.Intn(2) == 0 {
				if k.Cancel(id) {
					cancelled++
				}
			}
		}
		k.RunAll()
		if ran != n-cancelled {
			t.Fatalf("trial %d: ran %d, want %d", trial, ran, n-cancelled)
		}
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			if _, err := k.Schedule(Time(j%37), "b", func() {}); err != nil {
				b.Fatal(err)
			}
		}
		k.RunAll()
	}
}
