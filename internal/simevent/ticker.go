package simevent

// Ticker schedules a handler at a fixed virtual period until stopped. It is
// the building block for epoch-driven continuous queries and periodic
// sensor sampling.
type Ticker struct {
	k       *Kernel
	period  Duration
	label   string
	fn      func(Time)
	pending EventID
	stopped bool
	fires   uint64
	// MaxFires, when non-zero, stops the ticker after that many firings.
	MaxFires uint64
}

// NewTicker creates a ticker that calls fn every period, with the first
// firing one period from now. Call Start to arm it.
func NewTicker(k *Kernel, period Duration, label string, fn func(Time)) *Ticker {
	return &Ticker{k: k, period: period, label: label, fn: fn}
}

// Start arms the ticker. Starting an already-started ticker is a no-op.
func (t *Ticker) Start() error {
	if t.pending != 0 || t.stopped {
		return nil
	}
	return t.arm()
}

func (t *Ticker) arm() error {
	id, err := t.k.After(t.period, t.label, t.fire)
	if err != nil {
		return err
	}
	t.pending = id
	return nil
}

func (t *Ticker) fire() {
	t.pending = 0
	if t.stopped {
		return
	}
	t.fires++
	t.fn(t.k.Now())
	if t.MaxFires != 0 && t.fires >= t.MaxFires {
		t.stopped = true
		return
	}
	if !t.stopped {
		// Re-arm; a handler that stops the kernel leaves the ticker dormant.
		if err := t.arm(); err != nil {
			t.stopped = true
		}
	}
}

// Stop disarms the ticker. A stopped ticker never fires again.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != 0 {
		t.k.Cancel(t.pending)
		t.pending = 0
	}
}

// Fires reports how many times the ticker has fired.
func (t *Ticker) Fires() uint64 { return t.fires }
