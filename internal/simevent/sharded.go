package simevent

import (
	"fmt"
	"runtime"
	"sync"

	"pervasivegrid/internal/supervise"
)

// Sharded event execution: the single-threaded Kernel tops out well below
// city scale (100k+ nodes ticking), so ShardedKernel runs S independent
// kernels in lockstep windows across a bounded worker pool. Within a
// window every shard executes its own events on its own goroutine; at the
// window barrier, cross-shard posts buffered during the window are merged
// into their destination kernels in a fixed order (source shard index,
// then post order within the source). Because shards share no mutable
// state during a window and the merge order is independent of scheduling,
// a run is byte-identical for any worker count — determinism is a
// property of the seed, not of GOMAXPROCS.
//
// The contract for handlers running on shard i: touch only shard-i state,
// and reach other shards exclusively through Post. A post never executes
// in the window it was made — it is delayed to at least the next window
// boundary, which is what makes the lockstep windows conservative (no
// shard can observe another shard mid-window).

// crossPost is one buffered cross-shard event, applied at the next
// window barrier.
type crossPost struct {
	dst     int
	at      Time
	label   string
	handler Handler
}

// ShardedKernel coordinates S kernels advancing in lockstep windows.
// Construct with NewSharded; the zero value is not usable.
type ShardedKernel struct {
	shards  []*Kernel
	window  Duration
	workers int
	now     Time

	// cross buffers posts per *source* shard: during a window, shard i's
	// handlers append only to cross[i], so no locking is needed and the
	// barrier merge (source order, then append order) is deterministic.
	cross [][]crossPost

	// executed sums handlers run across all shards and windows.
	executed uint64
}

// NewSharded builds a sharded kernel with the given shard count, lockstep
// window width, and worker-pool size. workers <= 0 uses GOMAXPROCS; a
// window <= 0 or shards <= 0 panics (there is no sensible default for the
// window — it is the model's synchronization horizon).
func NewSharded(shards int, window Duration, workers int) *ShardedKernel {
	if shards <= 0 {
		panic(fmt.Sprintf("simevent: NewSharded with %d shards", shards))
	}
	if window <= 0 {
		panic(fmt.Sprintf("simevent: NewSharded with window %v", window))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sk := &ShardedKernel{
		shards:  make([]*Kernel, shards),
		window:  window,
		workers: workers,
		cross:   make([][]crossPost, shards),
	}
	for i := range sk.shards {
		sk.shards[i] = NewKernel()
	}
	return sk
}

// Shards reports the shard count.
func (sk *ShardedKernel) Shards() int { return len(sk.shards) }

// Shard exposes one member kernel for setup-time scheduling (tickers,
// initial events). During Run, shard i's kernel must only be touched by
// handlers executing on shard i.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i] }

// Now reports the lockstep clock: the start of the current window.
// Individual shards may be ahead of it mid-window (their local Now moves
// inside the window while they execute).
func (sk *ShardedKernel) Now() Time { return sk.now }

// Executed reports handlers run across all shards.
func (sk *ShardedKernel) Executed() uint64 { return sk.executed }

// Post schedules h on shard dst at absolute time at, from a handler
// currently executing on shard src. The post is buffered and applied at
// the next window barrier; if at falls inside the current window it is
// deferred to the barrier time, keeping the lockstep conservative.
// Setup-time scheduling (before Run) should use Shard(i).Schedule
// directly instead — a buffered post only lands after the first window.
func (sk *ShardedKernel) Post(src, dst int, at Time, label string, h Handler) error {
	if src < 0 || src >= len(sk.shards) || dst < 0 || dst >= len(sk.shards) {
		return fmt.Errorf("simevent: post %q from shard %d to %d of %d", label, src, dst, len(sk.shards))
	}
	sk.cross[src] = append(sk.cross[src], crossPost{dst: dst, at: at, label: label, handler: h})
	return nil
}

// pending reports whether any shard has queued events or any cross posts
// await a barrier.
func (sk *ShardedKernel) pending() bool {
	for _, k := range sk.shards {
		if k.Pending() > 0 {
			return true
		}
	}
	for _, posts := range sk.cross {
		if len(posts) > 0 {
			return true
		}
	}
	return false
}

// barrier merges the buffered cross posts into their destination kernels
// in deterministic order: source shard index, then append order. Posts
// timed inside the elapsed window are deferred to the barrier time.
func (sk *ShardedKernel) barrier() error {
	for src := range sk.cross {
		for _, post := range sk.cross[src] {
			at := post.at
			if at < sk.now {
				at = sk.now
			}
			if _, err := sk.shards[post.dst].Schedule(at, post.label, post.handler); err != nil {
				return err
			}
		}
		sk.cross[src] = sk.cross[src][:0]
	}
	return nil
}

// Run executes events until the lockstep clock reaches until or every
// shard drains. It returns the number of handlers executed during this
// call. Run is not reentrant and must not race other ShardedKernel use.
func (sk *ShardedKernel) Run(until Time) (uint64, error) {
	start := sk.executed
	for sk.now < until && sk.pending() {
		end := sk.now + sk.window
		if end > until {
			end = until
		}
		sk.runWindow(end)
		sk.now = end
		if err := sk.barrier(); err != nil {
			return sk.executed - start, err
		}
	}
	return sk.executed - start, nil
}

// runWindow executes every shard up to the window end on a bounded worker
// pool. Each shard runs entirely on one worker, so shard-local state
// needs no synchronization; the WaitGroup barrier publishes all shard
// writes (including the cross buffers) back to the coordinator.
func (sk *ShardedKernel) runWindow(end Time) {
	workers := sk.workers
	if workers > len(sk.shards) {
		workers = len(sk.shards)
	}
	if workers <= 1 {
		for _, k := range sk.shards {
			sk.executed += k.Run(end)
		}
		return
	}
	idx := make(chan int, len(sk.shards))
	for i := range sk.shards {
		idx <- i
	}
	close(idx)
	counts := make([]uint64, len(sk.shards))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		supervise.Spawn("simevent-shard-worker", func() {
			defer wg.Done()
			for i := range idx {
				counts[i] = sk.shards[i].Run(end)
			}
		})
	}
	wg.Wait()
	for _, c := range counts {
		sk.executed += c
	}
}
