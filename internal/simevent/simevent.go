// Package simevent provides a deterministic discrete-event simulation
// kernel. It is the substrate beneath the sensor-network simulator: events
// are scheduled at virtual timestamps and executed in timestamp order, with
// FIFO tie-breaking so that runs are reproducible.
//
// The kernel is deliberately single-threaded: determinism matters more than
// parallel event execution for the network sizes the paper considers.
// Parallelism in this repository lives in the computation substrates (the
// PDE solvers, the grid scheduler), not in the event loop.
package simevent

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual simulation timestamp. The zero Time is the start of the
// simulation. Time advances only when the kernel executes events.
type Time float64

// Duration is a span of virtual time.
type Duration = Time

// Infinity is a timestamp later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Seconds converts a real time.Duration into virtual seconds. The simulator
// uses seconds as its base unit throughout.
func Seconds(d time.Duration) Duration {
	return Duration(d.Seconds())
}

// Handler is a scheduled action. It runs with the kernel clock set to the
// event's timestamp.
type Handler func()

// Event is a scheduled occurrence inside the kernel.
type event struct {
	at      Time
	seq     uint64 // FIFO tie-break for equal timestamps
	id      EventID
	handler Handler
	label   string
	stopped bool
	index   int // heap index, -1 when popped
}

// EventID names a scheduled event so it can be cancelled.
type EventID uint64

// ErrStopped is returned by Schedule and Run after the kernel halted.
var ErrStopped = errors.New("simevent: kernel stopped")

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	nextID  EventID
	events  map[EventID]*event
	stopped bool
	// Executed counts handlers actually run (cancelled events excluded).
	executed uint64
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{events: make(map[EventID]*event)}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many event handlers have run.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are scheduled and not cancelled.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs h at absolute virtual time at. Scheduling in the past
// (before Now) is an error; scheduling exactly at Now is allowed and the
// handler runs after all currently pending handlers with the same
// timestamp.
func (k *Kernel) Schedule(at Time, label string, h Handler) (EventID, error) {
	if k.stopped {
		return 0, ErrStopped
	}
	if at < k.now {
		return 0, fmt.Errorf("simevent: schedule %q at %v before now %v", label, at, k.now)
	}
	if h == nil {
		return 0, fmt.Errorf("simevent: schedule %q with nil handler", label)
	}
	k.nextSeq++
	k.nextID++
	ev := &event{at: at, seq: k.nextSeq, id: k.nextID, handler: h, label: label}
	heap.Push(&k.queue, ev)
	k.events[ev.id] = ev
	return ev.id, nil
}

// After runs h after delay d from the current virtual time.
func (k *Kernel) After(d Duration, label string, h Handler) (EventID, error) {
	if d < 0 {
		return 0, fmt.Errorf("simevent: negative delay %v for %q", d, label)
	}
	return k.Schedule(k.now+d, label, h)
}

// Cancel removes a scheduled event. Cancelling an event that already ran or
// was already cancelled reports false.
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.events[id]
	if !ok {
		return false
	}
	delete(k.events, id)
	ev.stopped = true
	return true
}

// Stop halts the simulation: Run returns after the current handler and
// further Schedule calls fail.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single earliest pending event. It reports false when no
// events remain or the kernel is stopped.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		if k.stopped {
			return false
		}
		ev := heap.Pop(&k.queue).(*event)
		if ev.stopped {
			continue
		}
		delete(k.events, ev.id)
		k.now = ev.at
		k.executed++
		ev.handler()
		return true
	}
	return false
}

// Run executes events until the queue drains, the kernel is stopped, or the
// clock passes until. Events with timestamp exactly equal to until still
// run. It returns the number of handlers executed during this call.
func (k *Kernel) Run(until Time) uint64 {
	start := k.executed
	for k.queue.Len() > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		k.Step()
	}
	// Advance the clock to the horizon so repeated bounded runs make
	// progress even through quiet periods, but never move it backwards.
	if until != Infinity && until > k.now && !k.stopped {
		k.now = until
	}
	return k.executed - start
}

// RunAll executes events until none remain or the kernel stops.
func (k *Kernel) RunAll() uint64 { return k.Run(Infinity) }

// eventQueue is a binary heap ordered by (timestamp, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
