package simevent

import (
	"fmt"
	"testing"
)

// shardTrace runs a small cross-posting workload on a ShardedKernel and
// returns the deterministic execution trace of shard 0 plus the total
// handler count. Each shard ticks every 1.0 virtual seconds and posts a
// report to shard 0 every other tick; shard 0 appends the arrival order
// to the trace. Identical traces across worker counts prove the barrier
// merge is scheduling-independent.
func shardTrace(t *testing.T, shards, workers int, until Time) (string, uint64) {
	t.Helper()
	sk := NewSharded(shards, 1.0, workers)
	trace := ""
	for i := 0; i < shards; i++ {
		i := i
		ticks := 0
		tk := NewTicker(sk.Shard(i), 1.0, fmt.Sprintf("tick-%d", i), func(now Time) {
			ticks++
			if ticks%2 == 0 {
				n := ticks
				if err := sk.Post(i, 0, now, "report", func() {
					trace += fmt.Sprintf("[s%d t%d @%g]", i, n, sk.Shard(0).Now())
				}); err != nil {
					t.Errorf("post: %v", err)
				}
			}
		})
		if err := tk.Start(); err != nil {
			t.Fatalf("start ticker %d: %v", i, err)
		}
	}
	n, err := sk.Run(until)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return trace, n
}

func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	want, wantN := shardTrace(t, 7, 1, 10)
	if want == "" {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 4, 8} {
		got, gotN := shardTrace(t, 7, workers, 10)
		if got != want {
			t.Fatalf("workers=%d trace diverged:\n got %s\nwant %s", workers, got, want)
		}
		if gotN != wantN {
			t.Fatalf("workers=%d executed %d, want %d", workers, gotN, wantN)
		}
	}
}

func TestShardedCrossPostDeferredToBarrier(t *testing.T) {
	sk := NewSharded(2, 1.0, 1)
	var at Time = -1
	if _, err := sk.Shard(0).Schedule(0.25, "origin", func() {
		// Posted mid-window for "now": must not run until the barrier.
		_ = sk.Post(0, 1, sk.Shard(0).Now(), "hop", func() {
			at = sk.Shard(1).Now()
		})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Run(3); err != nil {
		t.Fatal(err)
	}
	if at != 1.0 {
		t.Fatalf("cross post ran at %g, want deferred to window barrier 1.0", at)
	}
}

func TestShardedPostBounds(t *testing.T) {
	sk := NewSharded(2, 1.0, 1)
	if err := sk.Post(0, 5, 0, "oob", func() {}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if err := sk.Post(-1, 0, 0, "oob", func() {}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestShardedRunStopsAtHorizon(t *testing.T) {
	sk := NewSharded(3, 0.5, 2)
	fires := 0
	tk := NewTicker(sk.Shard(1), 0.5, "tick", func(Time) { fires++ })
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Run(2.0); err != nil {
		t.Fatal(err)
	}
	if fires != 4 {
		t.Fatalf("fires = %d, want 4 at horizon 2.0 with period 0.5", fires)
	}
	if sk.Now() != 2.0 {
		t.Fatalf("lockstep clock = %g, want 2.0", sk.Now())
	}
	// Resume: the kernel picks up where it stopped.
	if _, err := sk.Run(3.0); err != nil {
		t.Fatal(err)
	}
	if fires != 6 {
		t.Fatalf("fires = %d after resume, want 6", fires)
	}
}

func TestShardedConstructorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { NewSharded(0, 10, 1) })
	mustPanic("zero window", func() { NewSharded(4, 0, 1) })

	sk := NewSharded(4, 10, 0) // workers <= 0 defaults to GOMAXPROCS
	if sk.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sk.Shards())
	}
	if sk.Executed() != 0 {
		t.Fatalf("Executed() = %d before any run", sk.Executed())
	}
}
