package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// memFile is an in-memory DiskFile recording what "reached the disk".
type memFile struct {
	buf     bytes.Buffer
	syncs   int
	closed  bool
	truncTo []int64
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Truncate(size int64) error {
	m.truncTo = append(m.truncTo, size)
	m.buf.Truncate(int(size))
	return nil
}
func (m *memFile) Close() error { m.closed = true; return nil }

func TestDiskInjectorDeterministicShortWrites(t *testing.T) {
	inj := NewDisk(DiskConfig{Seed: 3, ShortWriteEveryN: 3})
	m := &memFile{}
	f := inj.WrapFile(m)
	payload := []byte("0123456789")
	var failures []int
	for i := 1; i <= 9; i++ {
		n, err := f.Write(payload)
		if err != nil {
			failures = append(failures, i)
			if !errors.Is(err, io.ErrShortWrite) {
				t.Fatalf("write %d: torn write not marked short: %v", i, err)
			}
			if n >= len(payload) {
				t.Fatalf("write %d: torn write persisted %d of %d bytes", i, n, len(payload))
			}
		} else if n != len(payload) {
			t.Fatalf("write %d: clean write persisted %d bytes", i, n)
		}
	}
	if want := []int{3, 6, 9}; len(failures) != 3 || failures[0] != want[0] || failures[1] != want[1] || failures[2] != want[2] {
		t.Fatalf("torn writes at %v, want %v", failures, want)
	}
	st := inj.Stats()
	if st.Writes != 9 || st.ShortWrites != 3 {
		t.Fatalf("stats = %+v", st)
	}

	// Same seed, same verdicts: the fault schedule is reproducible.
	inj2 := NewDisk(DiskConfig{Seed: 3, ShortWriteEveryN: 3})
	m2 := &memFile{}
	f2 := inj2.WrapFile(m2)
	for i := 1; i <= 9; i++ {
		f2.Write(payload)
	}
	if m2.buf.String() != m.buf.String() {
		t.Fatal("same seed produced different on-disk bytes")
	}
}

func TestDiskInjectorSyncErrors(t *testing.T) {
	inj := NewDisk(DiskConfig{Seed: 1, SyncErrEveryN: 2})
	m := &memFile{}
	f := inj.WrapFile(m)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 2: %v, want injected failure", err)
	}
	if m.syncs != 1 {
		t.Fatalf("underlying syncs = %d, want 1 (injected failure short-circuits)", m.syncs)
	}
	st := inj.Stats()
	if st.Syncs != 2 || st.SyncErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskInjectorWriteErrorPersistsNothing(t *testing.T) {
	inj := NewDisk(DiskConfig{Seed: 5, WriteErrProb: 1.0})
	m := &memFile{}
	f := inj.WrapFile(m)
	n, err := f.Write([]byte("doomed"))
	if !errors.Is(err, ErrInjectedWrite) || n != 0 {
		t.Fatalf("write = %d, %v; want 0, injected error", n, err)
	}
	if m.buf.Len() != 0 {
		t.Fatalf("clean write error leaked %d bytes to disk", m.buf.Len())
	}
}

func TestDiskInjectorDisabledPassesThrough(t *testing.T) {
	inj := NewDisk(DiskConfig{Seed: 5, WriteErrProb: 1.0, SyncErrProb: 1.0})
	inj.SetDisabled(true)
	m := &memFile{}
	f := inj.WrapFile(m)
	if _, err := f.Write([]byte("safe")); err != nil {
		t.Fatalf("disabled injector failed a write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("disabled injector failed a sync: %v", err)
	}
	if err := f.Truncate(2); err != nil || len(m.truncTo) != 1 {
		t.Fatalf("truncate passthrough: %v %v", err, m.truncTo)
	}
	if err := f.Close(); err != nil || !m.closed {
		t.Fatal("close passthrough")
	}
}
