package faultinject

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
)

// Delivery-rate experiment (EXPERIMENTS.md E11): under 10% injected drop
// on the responder's deputy, a bare Call succeeds ~90% of the time — each
// lost request is a lost conversation — while CallRetry with 6 attempts
// recovers all of them (per-conversation failure rate 0.1^6; with seed 3
// one conversation loses 4 attempts in a row, so 4 is not enough). The
// seeds are fixed, so the measured rates are exactly reproducible.
func TestDeliveryRateUnderTenPercentDrop(t *testing.T) {
	const n = 300

	run := func(seed int64, converse func(p *agent.Platform, i int) bool) (ok int, retries uint64) {
		p := agent.NewPlatform("rate")
		defer p.Close()
		in := New(Config{Seed: seed, DropProb: 0.10})
		err := p.Register("echo", agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
			r, err := env.Reply("inform", "pong")
			if err != nil {
				return
			}
			_ = ctx.Send(r)
		}), agent.Attributes{}, in.WrapDeputy)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if converse(p, i) {
				ok++
			}
		}
		return ok, p.DeliveryStats().Retries
	}

	// Baseline: one shot per conversation, 10% of requests evaporate.
	bareOK, _ := run(3, func(p *agent.Platform, i int) bool {
		_, err := agent.Call(p, "echo", "request", "o", i, 25*time.Millisecond)
		return err == nil
	})

	// Retry layer: the same loss becomes latency.
	policy := agent.RetryPolicy{
		MaxAttempts:    6,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 25 * time.Millisecond,
		Seed:           5,
	}
	retryOK, retries := run(3, func(p *agent.Platform, i int) bool {
		_, err := agent.CallRetry(p, "echo", "request", "o", i, time.Second, policy)
		return err == nil
	})

	t.Logf("bare Call:  %d/%d conversations (%.1f%%)", bareOK, n, 100*float64(bareOK)/n)
	t.Logf("CallRetry:  %d/%d conversations (%.1f%%), %d retries", retryOK, n, 100*float64(retryOK)/n, retries)

	if bareOK < n*80/100 || bareOK > n*97/100 {
		t.Fatalf("bare success = %d/%d, want ~90%%", bareOK, n)
	}
	if retryOK != n {
		t.Fatalf("retry success = %d/%d, want every conversation to complete", retryOK, n)
	}
	if retries == 0 {
		t.Fatal("retry layer reported no retries under 10% loss")
	}
}
