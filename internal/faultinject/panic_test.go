package faultinject

import (
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
)

// ckptHandler counts envelopes and checkpoints the count.
type ckptHandler struct{ handled int }

func (h *ckptHandler) Handle(env agent.Envelope, ctx *agent.Context) { h.handled++ }
func (h *ckptHandler) Checkpoint() any                               { return h.handled }
func (h *ckptHandler) Restore(snapshot any)                          { h.handled = snapshot.(int) }

func handleN(t *testing.T, h agent.Handler, n int) (panics int) {
	t.Helper()
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			h.Handle(env(i), nil)
		}()
	}
	return panics
}

func TestWrapHandlerPanicEveryN(t *testing.T) {
	in := New(Config{PanicEveryN: 3})
	inner := &ckptHandler{}
	h := in.WrapHandler(inner)
	panics := handleN(t, h, 9)
	if panics != 3 {
		t.Fatalf("panics = %d, want 3 (every 3rd of 9)", panics)
	}
	if inner.handled != 6 {
		t.Fatalf("handled = %d, want 6", inner.handled)
	}
	if st := in.Stats(); st.Panicked != 3 {
		t.Fatalf("Stats.Panicked = %d, want 3", st.Panicked)
	}
}

func TestWrapHandlerPanicProbSeeded(t *testing.T) {
	run := func(seed int64) int {
		in := New(Config{Seed: seed, PanicProb: 0.5})
		return handleN(t, in.WrapHandler(&ckptHandler{}), 100)
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d panics", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("PanicProb 0.5 produced degenerate count %d", a)
	}
}

func TestCrashForWindow(t *testing.T) {
	fc := obs.NewFakeClock()
	in := New(Config{Clock: fc})
	h := in.WrapHandler(&ckptHandler{})
	if got := handleN(t, h, 2); got != 0 {
		t.Fatalf("panicked before CrashFor: %d", got)
	}
	in.CrashFor(time.Second)
	if got := handleN(t, h, 3); got != 3 {
		t.Fatalf("panics inside crash window = %d, want 3", got)
	}
	fc.Advance(2 * time.Second)
	if got := handleN(t, h, 2); got != 0 {
		t.Fatalf("panicked after window elapsed: %d", got)
	}
	if st := in.Stats(); st.Panicked != 3 {
		t.Fatalf("Stats.Panicked = %d, want 3", st.Panicked)
	}
}

func TestWrapHandlerForwardsCheckpoint(t *testing.T) {
	in := New(Config{})
	inner := &ckptHandler{handled: 5}
	h := in.WrapHandler(inner)
	cp, ok := h.(agent.Checkpointer)
	if !ok {
		t.Fatal("wrapped handler lost Checkpointer")
	}
	if got := cp.Checkpoint(); got.(int) != 5 {
		t.Fatalf("Checkpoint = %v, want 5", got)
	}
	cp.Restore(9)
	if inner.handled != 9 {
		t.Fatalf("Restore did not reach inner handler: %d", inner.handled)
	}
}
