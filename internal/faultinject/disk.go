package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// Disk faults: the storage-side counterpart of the lossy radio. A
// pervasive-grid node journals its state to flash that can lose power
// mid-write; DiskInjector manufactures the resulting failure shapes —
// short (torn) writes, write errors, fsync errors — deterministically
// from a seed, so the WAL's truncate-and-recover paths are testable
// without pulling the plug.

// DiskFile is the file surface the injector wraps. It is structurally
// identical to durable.File (declared here so faultinject does not
// import durable: the dependency points test-ward, not runtime-ward).
type DiskFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// DiskConfig parameterises a DiskInjector.
type DiskConfig struct {
	// Seed makes the fault sequence deterministic (0 picks seed 1).
	Seed int64
	// ShortWriteProb is the probability a write persists only a random
	// strict prefix of its bytes and then fails — a torn write.
	ShortWriteProb float64
	// WriteErrProb is the probability a write fails cleanly (no bytes
	// persisted).
	WriteErrProb float64
	// SyncErrProb is the probability an fsync reports failure.
	SyncErrProb float64
	// ShortWriteEveryN deterministically tears every Nth write (counted
	// across the injector), in addition to ShortWriteProb. Chaos tests
	// use it to tear an exact record.
	ShortWriteEveryN int
	// SyncErrEveryN deterministically fails every Nth fsync, in
	// addition to SyncErrProb.
	SyncErrEveryN int
}

// DiskStats counts injected disk faults.
type DiskStats struct {
	// Writes counts write calls that entered wrapped files.
	Writes uint64
	// ShortWrites counts torn writes injected.
	ShortWrites uint64
	// WriteErrors counts clean write failures injected.
	WriteErrors uint64
	// Syncs counts fsync calls that entered wrapped files.
	Syncs uint64
	// SyncErrors counts fsync failures injected.
	SyncErrors uint64
}

// ErrInjectedWrite is the failure a wrapped file reports for an
// injected clean write error.
var ErrInjectedWrite = fmt.Errorf("faultinject: injected write error")

// ErrInjectedSync is the failure a wrapped file reports for an injected
// fsync error.
var ErrInjectedSync = fmt.Errorf("faultinject: injected fsync error")

// DiskInjector decides each write's and fsync's fate from a seeded RNG.
// One injector can wrap any number of files; decisions interleave in
// call order, which is deterministic when the writes are.
type DiskInjector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cfg      DiskConfig
	writes   uint64
	syncs    uint64
	stats    DiskStats
	disabled bool
}

// NewDisk builds a disk-fault injector.
func NewDisk(cfg DiskConfig) *DiskInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &DiskInjector{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// SetDisabled pauses (true) or resumes (false) fault injection — so a
// test can build a healthy log first, then turn the weather bad.
func (d *DiskInjector) SetDisabled(v bool) {
	d.mu.Lock()
	d.disabled = v
	d.mu.Unlock()
}

// Stats snapshots injected-fault counts.
func (d *DiskInjector) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// WrapFile decorates a file with the injector's fault policy. Pass it
// as durable Options.WrapFile (adapting the parameter type) to put
// every WAL segment behind the fault seam.
func (d *DiskInjector) WrapFile(f DiskFile) DiskFile {
	return &faultFile{in: d, f: f}
}

// writeVerdict is the injector's decision for one write.
type writeVerdict int

const (
	writeOK writeVerdict = iota
	writeShort
	writeErr
)

// decideWrite rolls the dice for one write of n bytes, returning the
// verdict and, for a torn write, how many bytes to persist (a strict
// prefix, possibly zero).
func (d *DiskInjector) decideWrite(n int) (writeVerdict, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	d.stats.Writes++
	if d.disabled {
		return writeOK, 0
	}
	if d.cfg.ShortWriteEveryN > 0 && d.writes%uint64(d.cfg.ShortWriteEveryN) == 0 {
		d.stats.ShortWrites++
		return writeShort, d.rng.Intn(n)
	}
	if d.cfg.ShortWriteProb > 0 && d.rng.Float64() < d.cfg.ShortWriteProb {
		d.stats.ShortWrites++
		return writeShort, d.rng.Intn(n)
	}
	if d.cfg.WriteErrProb > 0 && d.rng.Float64() < d.cfg.WriteErrProb {
		d.stats.WriteErrors++
		return writeErr, 0
	}
	return writeOK, 0
}

// decideSync rolls the dice for one fsync.
func (d *DiskInjector) decideSync() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs++
	d.stats.Syncs++
	if d.disabled {
		return true
	}
	if d.cfg.SyncErrEveryN > 0 && d.syncs%uint64(d.cfg.SyncErrEveryN) == 0 {
		d.stats.SyncErrors++
		return false
	}
	if d.cfg.SyncErrProb > 0 && d.rng.Float64() < d.cfg.SyncErrProb {
		d.stats.SyncErrors++
		return false
	}
	return true
}

// faultFile applies the injector's verdicts to one wrapped file.
type faultFile struct {
	in *DiskInjector
	f  DiskFile
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return ff.f.Write(p)
	}
	verdict, keep := ff.in.decideWrite(len(p))
	switch verdict {
	case writeErr:
		return 0, ErrInjectedWrite
	case writeShort:
		// Persist a strict prefix for real — the torn bytes must land on
		// disk so recovery faces a genuinely garbled tail.
		n, err := ff.f.Write(p[:keep])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultinject: injected torn write (%d of %d bytes): %w", keep, len(p), io.ErrShortWrite)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if !ff.in.decideSync() {
		return ErrInjectedSync
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

func (ff *faultFile) Close() error { return ff.f.Close() }
