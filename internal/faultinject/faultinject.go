// Package faultinject wraps the agent platform's delivery primitives with
// seeded, deterministic fault injection: probabilistic envelope drop,
// added latency, duplication, and explicit partition windows. The paper
// demands a runtime that survives "low bandwidth, high latency, frequent
// disconnections and network topology changes"; this package is how the
// test suite *manufactures* those conditions on the real messaging path —
// not just in the simulated sensornet — so retry, reconnect, and
// dead-letter machinery can be exercised reproducibly.
//
// Faults are modelled as a lossy radio: a dropped envelope is silently
// swallowed (Deliver returns nil, RouteFunc returns true), exactly like a
// lost packet. Senders learn about it the only way a real sender can — by
// not hearing back — which is what forces the retry layer to do its job.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

// Config parameterises an Injector.
type Config struct {
	// Seed makes the fault sequence deterministic (0 picks seed 1, so an
	// unconfigured injector is still reproducible).
	Seed int64
	// DropProb is the probability an envelope is silently dropped.
	DropProb float64
	// DupProb is the probability an envelope is delivered twice.
	DupProb float64
	// Latency delays each delivery by Latency plus a uniform random
	// amount in [0, LatencyJitter). Delayed deliveries happen on a
	// timer goroutine, so senders are not blocked.
	Latency       time.Duration
	LatencyJitter time.Duration
	// DropEveryN deterministically drops every Nth envelope (counted
	// across the injector) in addition to DropProb. Useful for tests
	// that need an exact loss pattern.
	DropEveryN int
	// PanicProb is the probability a wrapped handler panics instead of
	// handling its envelope — a crashing agent rather than a lossy link.
	// Only handlers wrapped with WrapHandler are affected.
	PanicProb float64
	// PanicEveryN deterministically panics on every Nth envelope a
	// wrapped handler sees (counted per injector), in addition to
	// PanicProb. Chaos tests use it to crash an agent at an exact point
	// in a conversation.
	PanicEveryN int
	// Clock supplies time for latency timers and partition healing;
	// nil means obs.Real. Tests can install an obs.FakeClock to step
	// injected latency deterministically.
	Clock obs.Clock
}

// Stats counts injected faults.
type Stats struct {
	// Seen counts envelopes that entered the injector.
	Seen uint64
	// Passed counts envelopes forwarded unharmed (delayed ones count
	// once delivered).
	Passed uint64
	// Dropped counts silently discarded envelopes.
	Dropped uint64
	// Duplicated counts extra copies delivered.
	Duplicated uint64
	// Delayed counts deliveries that went through the latency timer.
	Delayed uint64
	// Panicked counts handler invocations the injector crashed.
	Panicked uint64
}

// Injector decides each envelope's fate from a seeded RNG. One injector
// can wrap any number of deputies and routes; decisions interleave in
// wrap-call order, which is deterministic when the traffic is.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	cfg         Config
	clk         obs.Clock
	partitioned bool
	crashUntil  time.Time
	count       uint64
	handleCount uint64
	stats       Stats
	metrics     *obs.Registry
}

// New builds an injector.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = obs.Real
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), cfg: cfg, clk: clk}
}

// SetPartitioned opens (true) or heals (false) a full partition: while
// partitioned every envelope is dropped regardless of DropProb.
func (in *Injector) SetPartitioned(p bool) {
	in.mu.Lock()
	in.partitioned = p
	in.mu.Unlock()
}

// PartitionFor opens a partition that heals itself after d — a scheduled
// network outage for chaos experiments.
func (in *Injector) PartitionFor(d time.Duration) {
	in.SetPartitioned(true)
	go func() {
		<-in.clk.After(d)
		in.SetPartitioned(false)
	}()
}

// CrashFor makes every wrapped handler panic on every envelope for the
// next d on the injector's clock — a crash-looping service. Supervision
// restarts the agent each time; the restart budget and breaker decide
// whether the loop is survivable.
func (in *Injector) CrashFor(d time.Duration) {
	in.mu.Lock()
	in.crashUntil = in.clk.Now().Add(d)
	in.mu.Unlock()
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// AttachMetrics mirrors every fault event into reg as
// faultinject_{seen,passed,dropped,duplicated,delayed}_total counters,
// so injected chaos shows up next to the platform's delivery metrics.
func (in *Injector) AttachMetrics(reg *obs.Registry) {
	in.mu.Lock()
	in.metrics = reg
	in.mu.Unlock()
}

// countLocked bumps a mirrored metric; callers hold in.mu.
func (in *Injector) countLocked(name string) {
	in.metrics.Counter(name).Inc()
}

// verdict is one envelope's fate.
type verdict struct {
	drop  bool
	dup   bool
	delay time.Duration
}

func (in *Injector) decide() verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.count++
	in.stats.Seen++
	v := verdict{}
	if in.partitioned {
		v.drop = true
	}
	if in.cfg.DropEveryN > 0 && in.count%uint64(in.cfg.DropEveryN) == 0 {
		v.drop = true
	}
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		v.drop = true
	}
	if v.drop {
		in.stats.Dropped++
		in.countLocked("faultinject_dropped_total")
		return v
	}
	if in.cfg.DupProb > 0 && in.rng.Float64() < in.cfg.DupProb {
		v.dup = true
		in.stats.Duplicated++
		in.countLocked("faultinject_duplicated_total")
	}
	if in.cfg.Latency > 0 || in.cfg.LatencyJitter > 0 {
		v.delay = in.cfg.Latency
		if in.cfg.LatencyJitter > 0 {
			v.delay += time.Duration(in.rng.Int63n(int64(in.cfg.LatencyJitter)))
		}
		in.stats.Delayed++
		in.countLocked("faultinject_delayed_total")
	}
	return v
}

func (in *Injector) notePassed(n uint64) {
	in.mu.Lock()
	in.stats.Passed += n
	if in.metrics != nil {
		in.metrics.Counter("faultinject_passed_total").Add(float64(n))
	}
	in.mu.Unlock()
}

// delayLine serialises deliveries for one wrapped target so injected
// latency cannot reorder envelopes: work is queued FIFO with its due
// time and drained by (at most) one goroutine in queue order. An
// undelayed envelope that arrives while earlier delayed work is pending
// queues behind it — a real slow link delays everything behind the slow
// packet; it does not let later packets overtake. In particular a
// duplicated envelope can no longer be overtaken by traffic injected
// after it (the pre-fix reordering bug).
type delayLine struct {
	clk     obs.Clock // set by the wrapping injector; never nil
	mu      sync.Mutex
	queue   []delayedItem
	running bool
}

type delayedItem struct {
	due time.Time
	run func()
}

// dispatch runs `run` after delay — inline when nothing is pending
// (reported by the return value), queued behind pending work otherwise.
func (dl *delayLine) dispatch(delay time.Duration, run func()) (inline bool) {
	dl.mu.Lock()
	if delay <= 0 && !dl.running && len(dl.queue) == 0 {
		dl.mu.Unlock()
		run()
		return true
	}
	dl.queue = append(dl.queue, delayedItem{due: dl.clk.Now().Add(delay), run: run})
	if !dl.running {
		dl.running = true
		supervise.Spawn("faultinject-delayline", dl.drain)
	}
	dl.mu.Unlock()
	return false
}

func (dl *delayLine) drain() {
	for {
		dl.mu.Lock()
		if len(dl.queue) == 0 {
			dl.running = false
			dl.mu.Unlock()
			return
		}
		item := dl.queue[0]
		dl.queue = dl.queue[1:]
		dl.mu.Unlock()
		if d := item.due.Sub(dl.clk.Now()); d > 0 {
			dl.clk.Sleep(d)
		}
		item.run()
	}
}

// apply runs the verdict against a delivery thunk, preserving per-target
// FIFO order through dl.
func (in *Injector) apply(dl *delayLine, deliver func()) {
	v := in.decide()
	if v.drop {
		return
	}
	n := uint64(1)
	if v.dup {
		n = 2
	}
	dl.dispatch(v.delay, func() {
		for i := uint64(0); i < n; i++ {
			deliver()
		}
		in.notePassed(n)
	})
}

// faultDeputy wraps a Deputy.
type faultDeputy struct {
	in   *Injector
	line delayLine
	next agent.Deputy
}

// Deliver implements agent.Deputy. Drops return nil — a lossy radio, not
// an error the sender could observe.
func (d *faultDeputy) Deliver(env agent.Envelope) error {
	d.in.apply(&d.line, func() { _ = d.next.Deliver(env) })
	return nil
}

// WrapDeputy decorates a deputy with this injector's faults; pass it as
// the wrap argument of Platform.Register.
func (in *Injector) WrapDeputy(next agent.Deputy) agent.Deputy {
	return &faultDeputy{in: in, next: next, line: delayLine{clk: in.clk}}
}

// decidePanic rolls the per-handler crash dice for one envelope.
func (in *Injector) decidePanic() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.handleCount++
	boom := false
	if !in.crashUntil.IsZero() && in.clk.Now().Before(in.crashUntil) {
		boom = true
	}
	if in.cfg.PanicEveryN > 0 && in.handleCount%uint64(in.cfg.PanicEveryN) == 0 {
		boom = true
	}
	if in.cfg.PanicProb > 0 && in.rng.Float64() < in.cfg.PanicProb {
		boom = true
	}
	if boom {
		in.stats.Panicked++
		in.countLocked("faultinject_panics_total")
	}
	return boom
}

// faultHandler wraps a Handler with injected crashes.
type faultHandler struct {
	in   *Injector
	next agent.Handler
}

func (h *faultHandler) Handle(env agent.Envelope, ctx *agent.Context) {
	if h.in.decidePanic() {
		panic(fmt.Sprintf("faultinject: crashed handling seq %d (%s)", env.Seq, env.Ontology))
	}
	h.next.Handle(env, ctx)
}

// Checkpoint forwards to the wrapped handler when it checkpoints, so
// injected crashes exercise the real restore path.
func (h *faultHandler) Checkpoint() any {
	if cp, ok := h.next.(agent.Checkpointer); ok {
		return cp.Checkpoint()
	}
	return nil
}

// Restore forwards to the wrapped handler when it checkpoints.
func (h *faultHandler) Restore(snapshot any) {
	if cp, ok := h.next.(agent.Checkpointer); ok {
		cp.Restore(snapshot)
	}
}

// WrapHandler decorates a handler with this injector's crash faults
// (PanicProb, PanicEveryN, CrashFor). The panic escapes into the agent's
// run loop, where supervision — if enabled — recovers and restarts the
// agent. The wrapper forwards Checkpoint/Restore, so a checkpointing
// handler stays checkpointable when wrapped.
func (in *Injector) WrapHandler(next agent.Handler) agent.Handler {
	return &faultHandler{in: in, next: next}
}

// WrapRoute decorates a RouteFunc: faulted envelopes are still reported
// as accepted (true), mimicking a link that took the packet and lost it.
// Each wrapped route owns a delay line, so envelopes on that route keep
// their send order even under injected latency; a synchronous delivery
// still reports the underlying route's verdict.
func (in *Injector) WrapRoute(next agent.RouteFunc) agent.RouteFunc {
	dl := &delayLine{clk: in.clk}
	return func(env agent.Envelope) bool {
		v := in.decide()
		if v.drop {
			return true
		}
		n := 1
		if v.dup {
			n = 2
		}
		accepted := true
		inline := dl.dispatch(v.delay, func() {
			for i := 0; i < n; i++ {
				accepted = next(env) && accepted
			}
			in.notePassed(uint64(n))
		})
		if inline {
			return accepted
		}
		return true
	}
}
