// Package faultinject wraps the agent platform's delivery primitives with
// seeded, deterministic fault injection: probabilistic envelope drop,
// added latency, duplication, and explicit partition windows. The paper
// demands a runtime that survives "low bandwidth, high latency, frequent
// disconnections and network topology changes"; this package is how the
// test suite *manufactures* those conditions on the real messaging path —
// not just in the simulated sensornet — so retry, reconnect, and
// dead-letter machinery can be exercised reproducibly.
//
// Faults are modelled as a lossy radio: a dropped envelope is silently
// swallowed (Deliver returns nil, RouteFunc returns true), exactly like a
// lost packet. Senders learn about it the only way a real sender can — by
// not hearing back — which is what forces the retry layer to do its job.
package faultinject

import (
	"math/rand"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
)

// Config parameterises an Injector.
type Config struct {
	// Seed makes the fault sequence deterministic (0 picks seed 1, so an
	// unconfigured injector is still reproducible).
	Seed int64
	// DropProb is the probability an envelope is silently dropped.
	DropProb float64
	// DupProb is the probability an envelope is delivered twice.
	DupProb float64
	// Latency delays each delivery by Latency plus a uniform random
	// amount in [0, LatencyJitter). Delayed deliveries happen on a
	// timer goroutine, so senders are not blocked.
	Latency       time.Duration
	LatencyJitter time.Duration
	// DropEveryN deterministically drops every Nth envelope (counted
	// across the injector) in addition to DropProb. Useful for tests
	// that need an exact loss pattern.
	DropEveryN int
}

// Stats counts injected faults.
type Stats struct {
	// Seen counts envelopes that entered the injector.
	Seen uint64
	// Passed counts envelopes forwarded unharmed (delayed ones count
	// once delivered).
	Passed uint64
	// Dropped counts silently discarded envelopes.
	Dropped uint64
	// Duplicated counts extra copies delivered.
	Duplicated uint64
	// Delayed counts deliveries that went through the latency timer.
	Delayed uint64
}

// Injector decides each envelope's fate from a seeded RNG. One injector
// can wrap any number of deputies and routes; decisions interleave in
// wrap-call order, which is deterministic when the traffic is.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	cfg         Config
	partitioned bool
	count       uint64
	stats       Stats
}

// New builds an injector.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// SetPartitioned opens (true) or heals (false) a full partition: while
// partitioned every envelope is dropped regardless of DropProb.
func (in *Injector) SetPartitioned(p bool) {
	in.mu.Lock()
	in.partitioned = p
	in.mu.Unlock()
}

// PartitionFor opens a partition that heals itself after d — a scheduled
// network outage for chaos experiments.
func (in *Injector) PartitionFor(d time.Duration) {
	in.SetPartitioned(true)
	time.AfterFunc(d, func() { in.SetPartitioned(false) })
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// verdict is one envelope's fate.
type verdict struct {
	drop  bool
	dup   bool
	delay time.Duration
}

func (in *Injector) decide() verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.count++
	in.stats.Seen++
	v := verdict{}
	if in.partitioned {
		v.drop = true
	}
	if in.cfg.DropEveryN > 0 && in.count%uint64(in.cfg.DropEveryN) == 0 {
		v.drop = true
	}
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		v.drop = true
	}
	if v.drop {
		in.stats.Dropped++
		return v
	}
	if in.cfg.DupProb > 0 && in.rng.Float64() < in.cfg.DupProb {
		v.dup = true
		in.stats.Duplicated++
	}
	if in.cfg.Latency > 0 || in.cfg.LatencyJitter > 0 {
		v.delay = in.cfg.Latency
		if in.cfg.LatencyJitter > 0 {
			v.delay += time.Duration(in.rng.Int63n(int64(in.cfg.LatencyJitter)))
		}
		in.stats.Delayed++
	}
	return v
}

func (in *Injector) notePassed(n uint64) {
	in.mu.Lock()
	in.stats.Passed += n
	in.mu.Unlock()
}

// apply runs the verdict against a delivery thunk.
func (in *Injector) apply(deliver func()) {
	v := in.decide()
	if v.drop {
		return
	}
	n := uint64(1)
	if v.dup {
		n = 2
	}
	run := func() {
		for i := uint64(0); i < n; i++ {
			deliver()
		}
		in.notePassed(n)
	}
	if v.delay > 0 {
		time.AfterFunc(v.delay, run)
		return
	}
	run()
}

// faultDeputy wraps a Deputy.
type faultDeputy struct {
	in   *Injector
	next agent.Deputy
}

// Deliver implements agent.Deputy. Drops return nil — a lossy radio, not
// an error the sender could observe.
func (d *faultDeputy) Deliver(env agent.Envelope) error {
	d.in.apply(func() { _ = d.next.Deliver(env) })
	return nil
}

// WrapDeputy decorates a deputy with this injector's faults; pass it as
// the wrap argument of Platform.Register.
func (in *Injector) WrapDeputy(next agent.Deputy) agent.Deputy {
	return &faultDeputy{in: in, next: next}
}

// WrapRoute decorates a RouteFunc: faulted envelopes are still reported
// as accepted (true), mimicking a link that took the packet and lost it.
func (in *Injector) WrapRoute(next agent.RouteFunc) agent.RouteFunc {
	return func(env agent.Envelope) bool {
		accepted := true
		v := in.decide()
		if v.drop {
			return true
		}
		n := 1
		if v.dup {
			n = 2
		}
		run := func() {
			for i := 0; i < n; i++ {
				accepted = next(env) && accepted
			}
			in.notePassed(uint64(n))
		}
		if v.delay > 0 {
			time.AfterFunc(v.delay, run)
			return true
		}
		run()
		return accepted
	}
}
