package faultinject

import (
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
)

// countDeputy records delivered envelopes.
type countDeputy struct {
	mu   sync.Mutex
	envs []agent.Envelope
}

func (c *countDeputy) Deliver(env agent.Envelope) error {
	c.mu.Lock()
	c.envs = append(c.envs, env)
	c.mu.Unlock()
	return nil
}

func (c *countDeputy) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.envs)
}

func env(i int) agent.Envelope {
	return agent.Envelope{Seq: uint64(i + 1), From: "a", To: "b", Performative: "inform"}
}

func TestSeededDropIsDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(Config{Seed: seed, DropProb: 0.3})
		sink := &countDeputy{}
		d := in.WrapDeputy(sink)
		out := make([]bool, 200)
		for i := range out {
			before := sink.count()
			if err := d.Deliver(env(i)); err != nil {
				t.Fatal(err)
			}
			out[i] = sink.count() > before
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at envelope %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestDropRateNearConfigured(t *testing.T) {
	in := New(Config{Seed: 1, DropProb: 0.1})
	sink := &countDeputy{}
	d := in.WrapDeputy(sink)
	const n = 2000
	for i := 0; i < n; i++ {
		_ = d.Deliver(env(i))
	}
	st := in.Stats()
	if st.Seen != n {
		t.Fatalf("seen = %d, want %d", st.Seen, n)
	}
	if st.Dropped < n/20 || st.Dropped > n/5 {
		t.Fatalf("dropped = %d of %d, want ~10%%", st.Dropped, n)
	}
	if st.Passed != uint64(sink.count()) {
		t.Fatalf("passed = %d, delivered = %d", st.Passed, sink.count())
	}
	if st.Passed+st.Dropped != st.Seen {
		t.Fatalf("stats don't add up: %+v", st)
	}
}

func TestDropEveryN(t *testing.T) {
	in := New(Config{DropEveryN: 3})
	sink := &countDeputy{}
	d := in.WrapDeputy(sink)
	for i := 0; i < 9; i++ {
		_ = d.Deliver(env(i))
	}
	if got := in.Stats().Dropped; got != 3 {
		t.Fatalf("dropped = %d, want exactly 3", got)
	}
	if sink.count() != 6 {
		t.Fatalf("delivered = %d, want 6", sink.count())
	}
}

func TestPartitionDropsEverythingUntilHealed(t *testing.T) {
	in := New(Config{})
	sink := &countDeputy{}
	d := in.WrapDeputy(sink)
	in.SetPartitioned(true)
	for i := 0; i < 5; i++ {
		_ = d.Deliver(env(i))
	}
	if sink.count() != 0 {
		t.Fatalf("delivered %d during partition", sink.count())
	}
	in.SetPartitioned(false)
	_ = d.Deliver(env(5))
	if sink.count() != 1 {
		t.Fatalf("delivered = %d after heal", sink.count())
	}
	if st := in.Stats(); st.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", st.Dropped)
	}
}

func TestPartitionForHealsItself(t *testing.T) {
	in := New(Config{})
	sink := &countDeputy{}
	d := in.WrapDeputy(sink)
	in.PartitionFor(30 * time.Millisecond)
	_ = d.Deliver(env(0))
	if sink.count() != 0 {
		t.Fatal("delivered during scheduled partition")
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		_ = d.Deliver(env(1))
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDuplication(t *testing.T) {
	in := New(Config{DupProb: 1})
	sink := &countDeputy{}
	d := in.WrapDeputy(sink)
	for i := 0; i < 4; i++ {
		_ = d.Deliver(env(i))
	}
	if sink.count() != 8 {
		t.Fatalf("delivered = %d, want every envelope twice", sink.count())
	}
	if st := in.Stats(); st.Duplicated != 4 {
		t.Fatalf("duplicated = %d", st.Duplicated)
	}
}

func TestLatencyDelaysWithoutBlockingSender(t *testing.T) {
	in := New(Config{Latency: 50 * time.Millisecond})
	sink := &countDeputy{}
	d := in.WrapDeputy(sink)
	start := time.Now()
	_ = d.Deliver(env(0))
	if since := time.Since(start); since > 20*time.Millisecond {
		t.Fatalf("Deliver blocked %v; latency must be asynchronous", since)
	}
	if sink.count() != 0 {
		t.Fatal("envelope arrived before the injected latency")
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed envelope never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWrapRouteSwallowsDrops(t *testing.T) {
	in := New(Config{DropEveryN: 2})
	var forwarded int
	r := in.WrapRoute(func(e agent.Envelope) bool {
		forwarded++
		return true
	})
	for i := 0; i < 6; i++ {
		if !r(env(i)) {
			t.Fatalf("faulted route must still report accepted (envelope %d)", i)
		}
	}
	if forwarded != 3 {
		t.Fatalf("forwarded = %d, want 3", forwarded)
	}
}
