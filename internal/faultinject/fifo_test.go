package faultinject

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
)

// orderRecorder captures the arrival order of envelope Seqs.
type orderRecorder struct {
	mu   sync.Mutex
	seqs []uint64
	done chan struct{}
	want int
}

func newOrderRecorder(want int) *orderRecorder {
	return &orderRecorder{done: make(chan struct{}), want: want}
}

func (r *orderRecorder) add(seq uint64) {
	r.mu.Lock()
	r.seqs = append(r.seqs, seq)
	if len(r.seqs) == r.want {
		close(r.done)
	}
	r.mu.Unlock()
}

func (r *orderRecorder) wait(t *testing.T) []uint64 {
	t.Helper()
	select {
	case <-r.done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out: got %d envelopes, want %d", len(r.seqs), r.want)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.seqs))
	copy(out, r.seqs)
	return out
}

// Regression for the latency-reordering bug: the old injector scheduled
// each delayed delivery on its own timer (time.AfterFunc), so an
// envelope with a long jittered delay was overtaken by later envelopes
// with shorter delays — and a duplicated envelope could even arrive
// *after* traffic sent behind it. The delay line must keep per-target
// FIFO order regardless of the per-envelope delay.
func TestInjectedLatencyPreservesFIFO(t *testing.T) {
	const msgs = 50
	in := New(Config{Seed: 7, Latency: time.Microsecond, LatencyJitter: 3 * time.Millisecond})

	p := agent.NewPlatform("fifo")
	defer p.Close()
	rec := newOrderRecorder(msgs)
	err := p.Register("sink", agent.HandlerFunc(func(env agent.Envelope, _ *agent.Context) {
		rec.add(env.Seq)
	}), agent.Attributes{}, in.WrapDeputy)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < msgs; i++ {
		env, err := agent.NewEnvelope("src", "sink", "inform", "test", i)
		if err != nil {
			t.Fatal(err)
		}
		env.Seq = uint64(i + 1)
		if err := p.Send(env); err != nil {
			t.Fatal(err)
		}
	}

	got := rec.wait(t)
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("reordered under injected latency: position %d got seq %d\nfull order: %v", i, seq, got)
		}
	}
	if st := in.Stats(); st.Delayed == 0 {
		t.Fatalf("test exercised no delayed deliveries: %+v", st)
	}
}

// The same guarantee on the route side, with duplicates in the mix: a
// duplicated envelope's copies stay adjacent and nothing sent after the
// duplicate arrives before it.
func TestInjectedLatencyPreservesRouteOrderWithDuplicates(t *testing.T) {
	const msgs = 40
	in := New(Config{Seed: 11, DupProb: 0.3, Latency: time.Microsecond, LatencyJitter: 2 * time.Millisecond})

	var mu sync.Mutex
	var arrived []uint64
	done := make(chan struct{})
	var once sync.Once
	route := in.WrapRoute(func(env agent.Envelope) bool {
		mu.Lock()
		arrived = append(arrived, env.Seq)
		n := len(arrived)
		mu.Unlock()
		if n >= msgs { // at least every original (dups add more)
			once.Do(func() { close(done) })
		}
		return true
	})

	for i := 1; i <= msgs; i++ {
		if !route(agent.Envelope{Seq: uint64(i), To: "remote"}) {
			t.Fatalf("route rejected envelope %d", i)
		}
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for deliveries")
	}
	// Drain stragglers (trailing duplicates), then check monotonicity.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	last := uint64(0)
	for i, seq := range arrived {
		if seq < last {
			t.Fatalf("seq %d arrived at position %d after seq %d\nfull order: %v", seq, i, last, arrived)
		}
		last = seq
	}
	if st := in.Stats(); st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("fault mix not exercised: %+v", st)
	}
}

func TestAttachMetricsMirrorsFaults(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Config{Seed: 3, DropEveryN: 2})
	in.AttachMetrics(reg)

	dl := &delayLine{}
	for i := 0; i < 10; i++ {
		in.apply(dl, func() {})
	}
	snap := reg.Snapshot()
	if snap.Counters["faultinject_dropped_total"] != 5 {
		t.Fatalf("dropped = %v, want 5: %v", snap.Counters["faultinject_dropped_total"], snap.Counters)
	}
	if snap.Counters["faultinject_passed_total"] != 5 {
		t.Fatalf("passed = %v, want 5: %v", snap.Counters["faultinject_passed_total"], snap.Counters)
	}
}

// Sanity: with no latency configured the fast path stays synchronous.
func TestUndelayedDeliveryIsSynchronous(t *testing.T) {
	in := New(Config{Seed: 1})
	dl := &delayLine{}
	ran := false
	in.apply(dl, func() { ran = true })
	if !ran {
		t.Fatal("undelayed delivery should run inline")
	}
	if fmt.Sprint(in.Stats().Passed) != "1" {
		t.Fatalf("stats: %+v", in.Stats())
	}
}
