package durable_test

import (
	"os"
	"strings"
	"testing"
	"time"

	"pervasivegrid/internal/durable"
	"pervasivegrid/internal/obs"
)

func flightSpan(trace, seq uint64, kind string, at time.Time) obs.Span {
	return obs.Span{Trace: trace, Seq: seq, Time: at, Node: "n1", Kind: kind, From: "a", To: "b"}
}

// TestFlightRoundTrip journals spans (via a hooked tracer), wide events
// (via a hooked event log), and a mark, then reopens the box and checks
// the previous life is replayed intact — the core -flight-dump promise.
func TestFlightRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fr, err := durable.OpenFlight(dir, durable.FlightOptions{})
	if err != nil {
		t.Fatalf("OpenFlight: %v", err)
	}
	if n := len(fr.RecoveredEvents()) + len(fr.RecoveredSpans()) + len(fr.RecoveredMarks()); n != 0 {
		t.Fatalf("fresh box recovered %d records, want 0", n)
	}

	tr := obs.NewTracer(64)
	el := obs.NewEventLog(64)
	fr.Hook(tr, el)

	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	tr.Record(flightSpan(7, 1, obs.SpanSend, base))
	tr.Record(flightSpan(7, 2, obs.SpanDeliver, base.Add(time.Millisecond)))

	ev := obs.NewEvent("n1", 7, "a", "b", "test-ontology", base)
	ev.Retries = 2
	ev.Finish(obs.OutcomeTimeout, base.Add(10*time.Millisecond))
	el.Emit(ev)

	fr.Mark("agent-giveup:b", os.ErrDeadlineExceeded)
	if err := fr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fr2, err := durable.OpenFlight(dir, durable.FlightOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fr2.Close()

	evs, sps, mks := fr2.RecoveredEvents(), fr2.RecoveredSpans(), fr2.RecoveredMarks()
	if len(evs) != 1 || len(sps) != 2 || len(mks) != 1 {
		t.Fatalf("recovered %d events, %d spans, %d marks; want 1, 2, 1", len(evs), len(sps), len(mks))
	}
	if evs[0].Trace != 7 || evs[0].Outcome != obs.OutcomeTimeout || evs[0].Retries != 2 {
		t.Fatalf("event did not round-trip: %+v", evs[0])
	}
	if sps[0].Kind != obs.SpanSend || sps[1].Kind != obs.SpanDeliver || sps[1].Trace != 7 {
		t.Fatalf("spans did not round-trip: %+v", sps)
	}
	if mks[0].Note != "agent-giveup:b" || mks[0].Err == "" {
		t.Fatalf("mark did not round-trip: %+v", mks[0])
	}

	dump := fr2.DumpText()
	for _, want := range []string{
		"1 wide events, 2 spans, 1 marks recovered",
		"MARK",
		"agent-giveup:b",
		"trace=0000000000000007",
		"timeout",
		"span timelines",
		"[n1]",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("DumpText missing %q:\n%s", want, dump)
		}
	}
}

// TestFlightRecoveryBounded proves the box replays only the newest
// EventCap/SpanCap records — the black box is a window, not an archive.
func TestFlightRecoveryBounded(t *testing.T) {
	dir := t.TempDir()
	opts := durable.FlightOptions{EventCap: 4, SpanCap: 4, KeepSegments: 64}
	fr, err := durable.OpenFlight(dir, opts)
	if err != nil {
		t.Fatalf("OpenFlight: %v", err)
	}
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		ev := obs.NewEvent("n1", uint64(i), "a", "b", "", base)
		ev.Finish(obs.OutcomeOK, base.Add(time.Millisecond))
		fr.RecordEvent(ev)
		fr.RecordSpan(flightSpan(uint64(i), 1, obs.SpanSend, base))
	}
	fr.Close()

	fr2, err := durable.OpenFlight(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fr2.Close()
	evs, sps := fr2.RecoveredEvents(), fr2.RecoveredSpans()
	if len(evs) != 4 || len(sps) != 4 {
		t.Fatalf("recovered %d events, %d spans; want 4, 4", len(evs), len(sps))
	}
	// The newest win: traces 6..9 survive, 0..5 aged out.
	if evs[0].Trace != 6 || evs[3].Trace != 9 || sps[0].Trace != 6 || sps[3].Trace != 9 {
		t.Fatalf("bounded replay kept wrong window: events %v..%v spans %v..%v",
			evs[0].Trace, evs[3].Trace, sps[0].Trace, sps[3].Trace)
	}
}

// TestFlightGCTrimsSegments forces rotations with tiny segments and
// checks the on-disk window stays at KeepSegments files.
func TestFlightGCTrimsSegments(t *testing.T) {
	dir := t.TempDir()
	opts := durable.FlightOptions{
		WAL:          durable.Options{SegmentBytes: 512},
		KeepSegments: 2,
	}
	fr, err := durable.OpenFlight(dir, opts)
	if err != nil {
		t.Fatalf("OpenFlight: %v", err)
	}
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		fr.RecordSpan(flightSpan(uint64(i), 1, obs.SpanRoute, base))
	}
	fr.Close()

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	segs := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs++
		}
	}
	if segs > 2 {
		t.Fatalf("gc left %d segments on disk, want <= 2", segs)
	}

	// The bounded window still replays cleanly.
	fr2, err := durable.OpenFlight(dir, opts)
	if err != nil {
		t.Fatalf("reopen after gc: %v", err)
	}
	defer fr2.Close()
	if len(fr2.RecoveredSpans()) == 0 {
		t.Fatal("no spans recovered from retained segments")
	}
}

// TestFlightSkipsUndecodableRecords plants a frame of non-JSON garbage
// in the journal (a valid WAL record — torn tails are the WAL's job,
// bad payloads are the recorder's) and checks replay skips it, counts
// it, and keeps everything around it.
func TestFlightSkipsUndecodableRecords(t *testing.T) {
	dir := t.TempDir()
	fr, err := durable.OpenFlight(dir, durable.FlightOptions{})
	if err != nil {
		t.Fatalf("OpenFlight: %v", err)
	}
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	fr.RecordSpan(flightSpan(1, 1, obs.SpanSend, base))
	fr.Close()

	w, err := durable.OpenWAL(dir, 0, durable.Options{Sync: durable.SyncOnRotate}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if err := w.Append([]byte("not json at all")); err != nil {
		t.Fatalf("Append garbage: %v", err)
	}
	// A well-formed frame with an unknown kind is also skipped.
	if err := w.Append([]byte(`{"k":"future-kind"}`)); err != nil {
		t.Fatalf("Append unknown kind: %v", err)
	}
	w.Close()

	fr2, err := durable.OpenFlight(dir, durable.FlightOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fr2.Close()
	if got := len(fr2.RecoveredSpans()); got != 1 {
		t.Fatalf("recovered %d spans, want 1", got)
	}
	if dump := fr2.DumpText(); !strings.Contains(dump, "2 undecodable records skipped") {
		t.Fatalf("dump does not report skipped records:\n%s", dump)
	}
}

// TestFlightNilSafe checks every method tolerates a nil receiver, so
// callers can wire the recorder unconditionally and gate only OpenFlight.
func TestFlightNilSafe(t *testing.T) {
	var fr *durable.FlightRecorder
	fr.RecordEvent(obs.NewEvent("", 0, "", "", "", time.Time{}))
	fr.RecordSpan(obs.Span{})
	fr.Mark("x", nil)
	fr.Hook(nil, nil)
	fr.AttachPlatform(nil)
	if fr.RecoveredEvents() != nil || fr.RecoveredSpans() != nil || fr.RecoveredMarks() != nil {
		t.Fatal("nil recorder returned non-nil recovery")
	}
	if err := fr.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := fr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if !strings.Contains(fr.DumpText(), "not open") {
		t.Fatal("nil DumpText should say not open")
	}
}
