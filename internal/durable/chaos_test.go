package durable_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/durable"
	"pervasivegrid/internal/leak"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
)

// kill -9 chaos test: a real node process — platform, counter agent,
// discovery registry, TCP gateway, all journaling through a durable
// store — is SIGKILLed mid-conversation. A second process restarted
// from the same -data-dir must recover the counter's checkpoint, the
// dead-letter ring, and the service registrations, and the client's
// in-flight conversation must complete end-to-end through retry +
// reconnect. This is the acceptance scenario of ROADMAP open item 4,
// run for real: two OS processes, real TCP, a real uncatchable signal.
//
// The node also carries the observability pipeline's black box: a
// flight recorder journaling every wide event and span through its own
// WAL. The restarted process must recover the pre-crash records — the
// conversations the dead process was having are readable after the
// SIGKILL, which is the `pgridd -flight-dump` contract.

const (
	chaosOntology = "x-durable-chaos"
	nodeEnvFlag   = "PGRID_DURABLE_NODE"
	nodeEnvDir    = "PGRID_DURABLE_DIR"
	nodeEnvAddr   = "PGRID_DURABLE_ADDR"
)

// ackCounter is the node's conversation partner: each "inc" bumps the
// count and acks it back. It checkpoints through the platform hooks, so
// its count survives both panics and power loss.
type ackCounter struct {
	mu    sync.Mutex
	count int
}

// ackReplyPolicy ships the counter's acks through the retry layer — each
// ack is then a conversation the node's wide-event log records, which is
// what the flight recorder journals for post-SIGKILL forensics.
var ackReplyPolicy = agent.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}

func (a *ackCounter) Handle(env agent.Envelope, ctx *agent.Context) {
	a.mu.Lock()
	a.count++
	n := a.count
	a.mu.Unlock()
	if reply, err := env.Reply("ack", n); err == nil {
		_ = agent.SendRetry(ctx.Platform, reply, 2*time.Second, ackReplyPolicy)
	}
}

func (a *ackCounter) Checkpoint() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	return counterState{Count: a.count}
}

func (a *ackCounter) Restore(snapshot any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch s := snapshot.(type) {
	case agent.RecoveredSnapshot:
		var st counterState
		if json.Unmarshal(s, &st) == nil {
			a.count = st.Count
		}
	case counterState:
		a.count = s.Count
	}
}

// TestDurableNodeProcess is not a test: it is the child-process body
// the chaos test re-executes this binary into (the standard subprocess
// idiom). It builds a full durable node and blocks until killed.
func TestDurableNodeProcess(t *testing.T) {
	if os.Getenv(nodeEnvFlag) != "1" {
		t.Skip("helper process for TestChaosKillDashNine")
	}
	dir := os.Getenv(nodeEnvDir)
	addr := os.Getenv(nodeEnvAddr)

	store, err := durable.Open(dir, durable.Options{Sync: durable.SyncAlways})
	if err != nil {
		fmt.Printf("FAIL open store: %v\n", err)
		return
	}
	p := agent.NewPlatform("durable-node")
	store.AttachPlatform(p)

	// Black box: full-capture tracer + wide-event log, both journaled
	// through the flight recorder's WAL. Hooked after the store attaches
	// so the crash marks chain onto the same platform hooks.
	p.Tracer = obs.NewTracer(1024)
	p.Events = obs.NewEventLog(256)
	flight, err := durable.OpenFlight(filepath.Join(dir, "flight"), durable.FlightOptions{})
	if err != nil {
		fmt.Printf("FAIL open flight: %v\n", err)
		return
	}
	flight.Hook(p.Tracer, p.Events)
	flight.AttachPlatform(p)

	counter := &ackCounter{}
	if err := p.Register("counter", counter, agent.Attributes{}, nil); err != nil {
		fmt.Printf("FAIL register counter: %v\n", err)
		return
	}

	reg := discovery.NewRegistry()
	store.AttachRegistry(reg)
	if len(reg.Profiles()) == 0 {
		// First life: advertise. Later lives must recover these from
		// the journal, not re-create them.
		for _, name := range []string{"svc-a", "svc-b"} {
			if _, err := reg.Register(&ontology.Profile{Name: name, Concept: "Service"}, time.Hour); err != nil {
				fmt.Printf("FAIL register %s: %v\n", name, err)
				return
			}
		}
	}
	if err := p.Register("registry-agent", agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var names []string
		for _, prof := range reg.Profiles() {
			names = append(names, prof.Name)
		}
		if reply, err := env.Reply("inform", names); err == nil {
			_ = ctx.Send(reply)
		}
	}), agent.Attributes{}, nil); err != nil {
		fmt.Printf("FAIL register registry-agent: %v\n", err)
		return
	}

	if _, err := agent.ListenAndServe(p, addr); err != nil {
		fmt.Printf("FAIL listen %s: %v\n", addr, err)
		return
	}

	recovered := 0
	if raw, ok := store.Checkpoints()["counter"]; ok {
		var st counterState
		if json.Unmarshal(raw, &st) == nil {
			recovered = st.Count
		}
	}
	fmt.Printf("READY count=%d regs=%d deadletters=%d flightevents=%d flightspans=%d\n",
		recovered, len(reg.Profiles()), len(store.DeadLetters()),
		len(flight.RecoveredEvents()), len(flight.RecoveredSpans()))
	select {} // hold the node up until the parent kills it
}

// nodeProc is one spawned child-node process.
type nodeProc struct {
	cmd   *exec.Cmd
	ready chan string
	done  chan struct{}
}

// startNode re-execs the test binary as a durable node on dir/addr and
// scans its stdout for the READY line.
func startNode(t *testing.T, dir, addr string) *nodeProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestDurableNodeProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		nodeEnvFlag+"=1", nodeEnvDir+"="+dir, nodeEnvAddr+"="+addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start node: %v", err)
	}
	np := &nodeProc{cmd: cmd, ready: make(chan string, 1), done: make(chan struct{})}
	go func() {
		defer close(np.done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if len(line) >= 5 && line[:5] == "READY" {
				select {
				case np.ready <- line:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() { np.kill() })
	return np
}

// awaitReady blocks for the node's READY line and parses its fields.
func (np *nodeProc) awaitReady(t *testing.T) (count, regs, deadletters, flightEvents, flightSpans int) {
	t.Helper()
	select {
	case line := <-np.ready:
		if _, err := fmt.Sscanf(line, "READY count=%d regs=%d deadletters=%d flightevents=%d flightspans=%d",
			&count, &regs, &deadletters, &flightEvents, &flightSpans); err != nil {
			t.Fatalf("bad READY line %q: %v", line, err)
		}
		return count, regs, deadletters, flightEvents, flightSpans
	case <-time.After(30 * time.Second):
		t.Fatal("node never became READY")
		return 0, 0, 0, 0, 0
	}
}

// kill SIGKILLs the node — the one signal no deferred fsync can catch —
// and reaps it.
func (np *nodeProc) kill() {
	if np.cmd.Process != nil {
		_ = np.cmd.Process.Kill()
	}
	_ = np.cmd.Wait()
	<-np.done
}

func TestChaosKillDashNine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	defer leak.Check(t)()
	dir := t.TempDir()

	// Reserve an address the node can reuse across both lives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// Life 1: fresh node — empty black box.
	node := startNode(t, dir, addr)
	count, regs, deadletters, fe, fs := node.awaitReady(t)
	if count != 0 || regs != 2 || deadletters != 0 {
		t.Fatalf("fresh node READY count=%d regs=%d deadletters=%d, want 0/2/0",
			count, regs, deadletters)
	}
	if fe != 0 || fs != 0 {
		t.Fatalf("fresh node recovered flightevents=%d flightspans=%d, want 0/0", fe, fs)
	}

	client := agent.NewPlatform("chaos-client")
	defer client.Close()
	link := agent.DialReconnect(client, addr, agent.ReconnectOptions{
		MaxBuffer: 64,
		BaseDelay: 5 * time.Millisecond,
	})
	defer link.Close()

	policy := agent.RetryPolicy{
		MaxAttempts:    30,
		BaseDelay:      20 * time.Millisecond,
		MaxDelay:       250 * time.Millisecond,
		Jitter:         0.2,
		AttemptTimeout: 300 * time.Millisecond,
		Seed:           7,
	}

	// Five acknowledged increments — each ack means the node handled it,
	// and with SyncAlways the checkpoint hits the journal right after.
	for i := 1; i <= 5; i++ {
		reply, err := agent.CallRetry(client, "counter", "inc", chaosOntology, i, 20*time.Second, policy)
		if err != nil {
			t.Fatalf("inc %d: %v", i, err)
		}
		var n int
		if err := reply.Decode(&n); err != nil || n < i {
			t.Fatalf("inc %d acked %d (%v)", i, n, err)
		}
	}

	// Provoke a dead letter on the node: an envelope for an agent that
	// does not exist, shipped over the real link.
	ghost, err := agent.NewEnvelope("chaos-client", "ghost", "inform", chaosOntology, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(ghost); err != nil {
		t.Fatalf("send to ghost (link should accept): %v", err)
	}

	// Let the last checkpoint and the ghost's dead letter reach the
	// journal (both are written synchronously once the node processes
	// them; the sleep covers the in-flight window).
	time.Sleep(200 * time.Millisecond)

	// Start an in-flight conversation, then kill -9 mid-flight. The
	// retry policy is long enough to span the node's death and rebirth.
	type result struct {
		n   int
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		reply, err := agent.CallRetry(client, "counter", "inc", chaosOntology, 6, 60*time.Second, policy)
		var n int
		if err == nil {
			err = reply.Decode(&n)
		}
		inflight <- result{n: n, err: err}
	}()
	time.Sleep(10 * time.Millisecond)
	node.kill()

	// Life 2: same data dir, same address. The READY line proves the
	// journal: the counter's checkpoint, both service registrations, and
	// the ghost's dead letter all survived the SIGKILL. So did the black
	// box: the five acked conversations' wide events and the spans of
	// the traffic the dead process was carrying (including the in-flight
	// inc's delivery spans) are back, pre-crash, before any new traffic.
	node2 := startNode(t, dir, addr)
	count2, regs2, dead2, fe2, fs2 := node2.awaitReady(t)
	if count2 < 5 {
		t.Fatalf("recovered count = %d, want >= 5 acknowledged increments", count2)
	}
	if regs2 != 2 {
		t.Fatalf("recovered registrations = %d, want 2 (svc-a, svc-b)", regs2)
	}
	if dead2 < 1 {
		t.Fatalf("recovered dead letters = %d, want >= 1 (the ghost)", dead2)
	}
	if fe2 < 5 {
		t.Fatalf("recovered flight events = %d, want >= 5 (one per acked conversation)", fe2)
	}
	if fs2 < 5 {
		t.Fatalf("recovered flight spans = %d, want >= 5 (the dead process's span traffic)", fs2)
	}

	// The in-flight conversation must complete against the reborn node,
	// continuing the recovered count (>= 6; retries may double-handle).
	select {
	case r := <-inflight:
		if r.err != nil {
			t.Fatalf("in-flight conversation died with the node: %v", r.err)
		}
		if r.n < 6 {
			t.Fatalf("in-flight ack = %d, want >= 6 (recovered 5 + this inc)", r.n)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("in-flight conversation never completed after restart")
	}

	// And the recovered registry answers over the wire.
	reply, err := agent.CallRetry(client, "registry-agent", "list", chaosOntology, nil, 20*time.Second, policy)
	if err != nil {
		t.Fatalf("registry query after restart: %v", err)
	}
	var names []string
	if err := reply.Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "svc-a" || names[1] != "svc-b" {
		t.Fatalf("recovered services = %v, want [svc-a svc-b]", names)
	}

	// Reap the second node before the leak gate runs (its stdout
	// scanner goroutine lives as long as the child does).
	node2.kill()

	// Finally, read the black box the way an operator would after the
	// outage: `pgridd -flight-dump` opens the flight WAL offline and
	// renders every recovered conversation. Both lives' traffic is in
	// there — at least the 5 pre-kill acks plus the in-flight inc that
	// completed against the reborn node.
	fr, err := durable.OpenFlight(filepath.Join(dir, "flight"), durable.FlightOptions{})
	if err != nil {
		t.Fatalf("offline flight open: %v", err)
	}
	defer fr.Close()
	if got := len(fr.RecoveredEvents()); got < 6 {
		t.Fatalf("offline dump recovered %d wide events, want >= 6", got)
	}
	dump := fr.DumpText()
	if !strings.Contains(dump, "wide events") || !strings.Contains(dump, "span timelines") ||
		!strings.Contains(dump, "durable-node") {
		t.Fatalf("flight dump missing expected sections:\n%s", dump)
	}
}
