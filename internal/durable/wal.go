package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/supervise"
)

const (
	// frameHeader is the per-record overhead: u32 length + u32 CRC32.
	frameHeader = 8
	// maxRecord bounds one payload; a length field above it is treated
	// as corruption, not an allocation request.
	maxRecord = 16 << 20

	segPrefix = "wal-"
	segSuffix = ".log"
)

// ErrRecordTooLarge rejects an append whose payload exceeds maxRecord.
var ErrRecordTooLarge = errors.New("durable: record exceeds max size")

// ErrClosed rejects operations on a closed WAL.
var ErrClosed = errors.New("durable: wal closed")

// segName formats the file name of segment seg.
func segName(seg uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seg, segSuffix)
}

// parseSegName extracts the segment index from a WAL file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// WALStats is a point-in-time snapshot of log activity.
type WALStats struct {
	// Appends counts records successfully appended this process life.
	Appends uint64
	// Syncs counts fsyncs issued.
	Syncs uint64
	// Rotations counts segment seals.
	Rotations uint64
	// Replayed counts records recovered at open.
	Replayed uint64
	// Truncated counts torn tails amputated at open.
	Truncated uint64
	// WriteErrors counts failed appends (including injected faults).
	WriteErrors uint64
	// ActiveSegment is the index of the current append target.
	ActiveSegment uint64
	// ActiveBytes is the active segment's current size.
	ActiveBytes int64
}

// WAL is an append-only, CRC-framed, segmented log. All methods are
// safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        File
	seg      uint64 // active segment index
	size     int64  // bytes written to active segment
	dirty    bool   // active segment took a write error; seal on next append
	unsynced bool   // bytes appended since last fsync
	closed   bool

	appends     uint64
	syncs       uint64
	rotations   uint64
	replayed    uint64
	truncated   uint64
	writeErrors uint64

	metrics *obs.Registry
	syncer  *supervise.Proc
}

// OpenWAL opens (creating if needed) the log in dir, replays every
// surviving record through replay in (segment, append) order, truncates
// a torn tail on the last segment, and leaves the highest segment open
// for append. replay may be nil. firstSeg is the lowest segment index
// to replay — records in older segments are skipped (they are covered
// by a snapshot); pass 0 to replay everything.
func OpenWAL(dir string, firstSeg uint64, opts Options, replay func(seg uint64, rec []byte)) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts}
	if len(segs) == 0 {
		w.seg = 1
		if firstSeg > 1 {
			w.seg = firstSeg
		}
		if err := w.openSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		for i, seg := range segs {
			last := i == len(segs)-1
			n, goodEnd, serr := w.scanSegment(seg, firstSeg, replay)
			if serr != nil {
				return nil, serr
			}
			w.replayed += n
			if last {
				// Amputate a torn tail so the next append lands after
				// the last good frame.
				path := filepath.Join(dir, segName(seg))
				if fi, err := os.Stat(path); err == nil && fi.Size() > goodEnd {
					if err := os.Truncate(path, goodEnd); err != nil {
						return nil, fmt.Errorf("durable: truncate torn tail: %w", err)
					}
					w.truncated++
				}
				w.seg = seg
				w.size = goodEnd
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, fmt.Errorf("durable: reopen segment: %w", err)
				}
				w.f = wrapFile(f, opts)
			}
		}
	}
	if opts.Sync == SyncInterval {
		w.syncer = supervise.Periodic("durable-wal-sync", opts.Clock, opts.SyncEvery, func() {
			_ = w.Sync()
		})
	}
	return w, nil
}

func wrapFile(f File, opts Options) File {
	if opts.WrapFile != nil {
		return opts.WrapFile(f)
	}
	return f
}

// listSegments returns the segment indices present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: read dir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment replays every intact frame of segment seg (skipping the
// replay callback when seg < firstSeg) and returns the record count
// delivered plus the byte offset just past the last good frame. A
// short, zero-length, oversized, or CRC-failing frame stops the scan —
// corruption truncates the segment's logical contents at that point.
func (w *WAL) scanSegment(seg, firstSeg uint64, replay func(seg uint64, rec []byte)) (uint64, int64, error) {
	path := filepath.Join(w.dir, segName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("durable: read segment: %w", err)
	}
	var n uint64
	var off int64
	for {
		rec, next, ok := nextFrame(data, off)
		if !ok {
			return n, off, nil
		}
		if seg >= firstSeg && replay != nil {
			replay(seg, rec)
		}
		if seg >= firstSeg {
			n++
		}
		off = next
	}
}

// nextFrame decodes the frame at off. ok=false means no intact frame
// starts there (end of data, torn tail, or corruption).
func nextFrame(data []byte, off int64) (rec []byte, next int64, ok bool) {
	if off+frameHeader > int64(len(data)) {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(data[off:])
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if length == 0 || length > maxRecord {
		return nil, 0, false
	}
	end := off + frameHeader + int64(length)
	if end > int64(len(data)) {
		return nil, 0, false
	}
	payload := data[off+frameHeader : end]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, end, true
}

// openSegmentLocked creates and switches to segment w.seg. Caller holds
// w.mu (or is in single-threaded open).
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.dir, segName(w.seg))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	w.f = wrapFile(f, w.opts)
	w.size = 0
	w.dirty = false
	return nil
}

// Append frames rec and writes it to the active segment, rotating first
// if the segment is full or was dirtied by an earlier failed write.
// Under SyncAlways the record is fsynced before Append returns. On a
// write error the segment is truncated back to the last good frame; if
// even that fails, the segment is sealed dirty and the next append
// rotates past it — a fault injects loss, never a wedged log.
//
//lint:hot budget=11
func (w *WAL) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("durable: empty record")
	}
	if len(rec) > maxRecord {
		return ErrRecordTooLarge
	}
	frame := make([]byte, frameHeader+len(rec))
	binary.LittleEndian.PutUint32(frame, uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(rec))
	copy(frame[frameHeader:], rec)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.dirty || (w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentBytes) {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := w.f.Write(frame)
	if err != nil {
		w.writeErrors++
		w.counter("durable_wal_write_errors_total")
		// A partial frame on disk would mask every frame behind it in
		// this segment; cut it off, or seal the segment if we cannot.
		if n > 0 {
			if terr := w.f.Truncate(w.size); terr != nil {
				w.dirty = true
			}
		}
		return fmt.Errorf("durable: append: %w", err)
	}
	w.size += int64(len(frame))
	w.appends++
	w.unsynced = true
	w.counter("durable_wal_appends_total")
	if w.opts.Sync == SyncAlways {
		if serr := w.syncLocked(); serr != nil {
			return serr
		}
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		_ = w.f.Sync()
		_ = w.f.Close()
	}
	w.seg++
	w.rotations++
	w.unsynced = false
	w.counter("durable_wal_rotations_total")
	return w.openSegmentLocked()
}

// Rotate seals the active segment and opens a fresh one, returning the
// new active segment's index. Compaction uses this as the snapshot
// watermark: everything below the returned index is snapshot-covered.
func (w *WAL) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seg, nil
}

// RemoveBefore deletes sealed segments with index < seg. The active
// segment is never removed.
func (w *WAL) RemoveBefore(seg uint64) error {
	w.mu.Lock()
	active := w.seg
	w.mu.Unlock()
	if seg > active {
		seg = active
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seg {
			if err := os.Remove(filepath.Join(w.dir, segName(s))); err != nil {
				return fmt.Errorf("durable: remove segment: %w", err)
			}
		}
	}
	return nil
}

// Sync forces unsynced appends to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.unsynced {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	w.unsynced = false
	w.syncs++
	w.counter("durable_wal_syncs_total")
	return nil
}

// Close stops the interval-sync loop, fsyncs, and closes the active
// segment. Append/Sync after Close return ErrClosed.
func (w *WAL) Close() error {
	// Stop the syncer before taking w.mu: its tick fn takes w.mu.
	if w.syncer != nil {
		w.syncer.Stop()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.f != nil {
		if w.unsynced {
			err = w.f.Sync()
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// AttachMetrics mirrors WAL activity into reg as durable_wal_* counters.
// Safe to call with nil (no-op registry semantics are obs's contract).
func (w *WAL) AttachMetrics(reg *obs.Registry) {
	w.mu.Lock()
	w.metrics = reg
	w.mu.Unlock()
}

// counter bumps a metrics counter; caller holds w.mu.
func (w *WAL) counter(name string) {
	if w.metrics != nil {
		w.metrics.Counter(name).Inc()
	}
}

// Stats snapshots log activity.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Appends:       w.appends,
		Syncs:         w.syncs,
		Rotations:     w.rotations,
		Replayed:      w.replayed,
		Truncated:     w.truncated,
		WriteErrors:   w.writeErrors,
		ActiveSegment: w.seg,
		ActiveBytes:   w.size,
	}
}

// ActiveSegment reports the current append target's index.
func (w *WAL) ActiveSegment() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}
