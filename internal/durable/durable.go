// Package durable is the node's crash-survival layer: an append-only
// write-ahead log plus snapshot compaction that carries a pervasive-grid
// node's soft state — supervised-agent checkpoints, the dead-letter
// ring, and discovery registrations — across process death. The paper's
// deployment is built from devices that power-cycle mid-mission ("the
// firefighter's PDA ... may be disconnected or destroyed"); PR 5's
// supervision recovers panics inside a live process, and this package
// extends the same guarantee across a kill -9: a pgridd restarted from
// its -data-dir replays the log, re-seeds its agents' checkpoints,
// refills the dead-letter ring, and re-advertises its services.
//
// Layout of a data directory:
//
//	wal-00000001.log   sealed segment (oldest surviving)
//	wal-00000002.log   ...
//	wal-00000007.log   active segment (append target)
//	snapshot.json      compaction snapshot + first segment to replay
//
// Every record is framed as
//
//	+----------+----------+-----------------+
//	| len u32  | crc u32  | payload (len B) |
//	+----------+----------+-----------------+
//
// with the length and CRC32 (IEEE) little-endian. Recovery scans frames
// until the first incomplete or CRC-failing one: a torn tail — the
// signature of a crash mid-append — truncates to the last good frame
// and the node boots with the surviving prefix. A torn record is never
// a reason to refuse to boot.
//
// Durability is a policy knob (SyncPolicy): fsync every append
// (SyncAlways, the default — an acknowledged record survives the next
// instant's power cut), on a supervised interval (SyncInterval), or
// only at segment rotation (SyncOnRotate, fastest, bounded loss).
// docs/robustness.md tabulates the trade-offs.
package durable

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pervasivegrid/internal/obs"
)

// File is the write surface the WAL appends through. *os.File satisfies
// it; faultinject's disk injector wraps it (via Options.WrapFile) to
// manufacture short/torn writes and fsync errors deterministically, so
// the recovery paths are testable without pulling power.
type File interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Truncate cuts the file back to size bytes — how a torn append is
	// amputated so later good frames stay reachable.
	Truncate(size int64) error
	Close() error
}

// SyncPolicy picks when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// on stable storage before Append returns. The durable default —
	// and the slowest (each append pays a device flush).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a supervised background loop every
	// Options.SyncEvery. Loses at most one interval of records on a
	// crash; appends stay memory-speed.
	SyncInterval
	// SyncOnRotate fsyncs only when a segment seals (rotation or
	// Close). Fastest; a crash can lose the whole active segment's
	// unforced tail.
	SyncOnRotate
)

// String names the policy the way the pgridd -fsync flag spells it.
func (sp SyncPolicy) String() string {
	switch sp {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOnRotate:
		return "rotate"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(sp))
}

// ParseSyncPolicy maps a -fsync flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "rotate":
		return SyncOnRotate, nil
	}
	return SyncAlways, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or rotate)", s)
}

// DefaultSegmentBytes bounds a WAL segment before rotation.
const DefaultSegmentBytes = 4 << 20

// DefaultSyncEvery is the SyncInterval flush period.
const DefaultSyncEvery = 50 * time.Millisecond

// DefaultDeadLetterCap bounds how many recovered dead letters the store
// retains (mirrors the platform ring's default).
const DefaultDeadLetterCap = 128

// Options parameterise a WAL / Store.
type Options struct {
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default DefaultSegmentBytes).
	SegmentBytes int64
	// Sync picks the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 50ms).
	SyncEvery time.Duration
	// Clock drives the interval-sync loop and registration expiry
	// arithmetic; nil means the wall clock.
	Clock obs.Clock
	// WrapFile decorates every segment file the WAL opens for append —
	// the disk-fault seam (see faultinject.DiskInjector.WrapFile). Nil
	// means raw *os.File.
	WrapFile func(File) File
	// DeadLetterCap bounds the store's recovered dead-letter ring
	// (default DefaultDeadLetterCap).
	DeadLetterCap int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.Clock == nil {
		o.Clock = obs.Real
	}
	if o.DeadLetterCap <= 0 {
		o.DeadLetterCap = DefaultDeadLetterCap
	}
	return o
}
