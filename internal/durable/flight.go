package durable

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/obs"
)

// Flight recorder: the black box. The tracer and event log explain a
// running node, but a crash takes their rings with it — exactly when
// the last few conversations matter most. The recorder journals every
// retained span and every wide event through its own small WAL, so
// after a panic, an OnGiveUp escalation, a SIGQUIT, or a kill -9, the
// next boot replays what the node saw on its way down
// (`pgridd -flight-dump`).
//
// It is a *bounded* black box, not an archive: tiny segments rotate
// constantly and only the last KeepSegments are retained, so the disk
// cost is fixed no matter how long the node runs. Appends are plain
// write(2)s — a killed process loses nothing (the page cache survives
// process death); explicit Flush fsyncs for the machine-crash case and
// runs on the crash hooks.

// FlightOptions shapes the recorder.
type FlightOptions struct {
	// WAL tunes the underlying journal. Zero values mean: 256 KiB
	// segments, fsync on rotate (write(2) per record regardless — see
	// above), wall clock.
	WAL Options
	// EventCap / SpanCap bound the rings recovered at open
	// (defaults 256 / 1024; the newest records win).
	EventCap int
	SpanCap  int
	// KeepSegments bounds the on-disk window: segments older than the
	// newest KeepSegments are deleted after each rotation (default 2,
	// so the box holds between one and two segments' worth of history).
	KeepSegments int
}

func (o FlightOptions) withDefaults() FlightOptions {
	if o.WAL.SegmentBytes <= 0 {
		o.WAL.SegmentBytes = 256 << 10
	}
	if o.WAL.Sync == 0 { // zero value is SyncAlways; flight default is rotate
		o.WAL.Sync = SyncOnRotate
	}
	o.WAL = o.WAL.withDefaults()
	if o.EventCap <= 0 {
		o.EventCap = 256
	}
	if o.SpanCap <= 0 {
		o.SpanCap = 1024
	}
	if o.KeepSegments <= 0 {
		o.KeepSegments = 2
	}
	return o
}

// FlightMark is a crash-context marker journaled when a flush hook
// fires (agent restart, give-up, SIGQUIT), so the dump says not just
// what happened but why the box was sealed.
type FlightMark struct {
	Note string    `json:"note"`
	Err  string    `json:"err,omitempty"`
	Time time.Time `json:"time"`
}

// flightRec is the journal frame: exactly one of Ev/Sp/Mk is set.
type flightRec struct {
	K  string      `json:"k"` // "fev" | "fsp" | "fmk"
	Ev *obs.Event  `json:"ev,omitempty"`
	Sp *obs.Span   `json:"sp,omitempty"`
	Mk *FlightMark `json:"mk,omitempty"`
}

// FlightRecorder journals recent wide events and spans to disk.
type FlightRecorder struct {
	opts FlightOptions
	wal  *WAL

	mu      sync.Mutex
	events  []obs.Event // recovered from the previous life, oldest first
	spans   []obs.Span
	marks   []FlightMark
	lastSeg uint64
	badRecs int
}

// OpenFlight opens (creating if needed) the black box under dir,
// replaying whatever the previous process life left behind.
func OpenFlight(dir string, opts FlightOptions) (*FlightRecorder, error) {
	o := opts.withDefaults()
	fr := &FlightRecorder{opts: o}
	w, err := OpenWAL(dir, 0, o.WAL, func(seg uint64, rec []byte) {
		var r flightRec
		if err := json.Unmarshal(rec, &r); err != nil {
			fr.badRecs++
			return
		}
		switch {
		case r.K == "fev" && r.Ev != nil:
			fr.events = appendBounded(fr.events, *r.Ev, o.EventCap)
		case r.K == "fsp" && r.Sp != nil:
			fr.spans = appendBounded(fr.spans, *r.Sp, o.SpanCap)
		case r.K == "fmk" && r.Mk != nil:
			fr.marks = append(fr.marks, *r.Mk)
		default:
			fr.badRecs++
		}
	})
	if err != nil {
		return nil, err
	}
	fr.wal = w
	fr.lastSeg = w.ActiveSegment()
	fr.gc()
	return fr, nil
}

// appendBounded keeps the newest capacity entries.
func appendBounded[T any](s []T, v T, capacity int) []T {
	if len(s) < capacity {
		return append(s, v)
	}
	copy(s, s[1:])
	s[len(s)-1] = v
	return s
}

// RecoveredEvents returns the wide events replayed at open, oldest
// first — the pre-crash conversation history.
func (fr *FlightRecorder) RecoveredEvents() []obs.Event {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]obs.Event, len(fr.events))
	copy(out, fr.events)
	return out
}

// RecoveredSpans returns the spans replayed at open, oldest first —
// including the in-flight conversation the crash interrupted.
func (fr *FlightRecorder) RecoveredSpans() []obs.Span {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]obs.Span, len(fr.spans))
	copy(out, fr.spans)
	return out
}

// RecoveredMarks returns the crash-context markers replayed at open.
func (fr *FlightRecorder) RecoveredMarks() []FlightMark {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightMark, len(fr.marks))
	copy(out, fr.marks)
	return out
}

// append journals one frame and garbage-collects old segments after a
// rotation. Journal errors are swallowed: the black box must never
// take down the flight it is recording.
func (fr *FlightRecorder) append(r flightRec) {
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	if err := fr.wal.Append(data); err != nil {
		return
	}
	if seg := fr.wal.ActiveSegment(); seg != fr.lastSeg {
		fr.mu.Lock()
		fr.lastSeg = seg
		fr.mu.Unlock()
		fr.gc()
	}
}

// gc trims the on-disk window to KeepSegments.
func (fr *FlightRecorder) gc() {
	active := fr.wal.ActiveSegment()
	keep := uint64(fr.opts.KeepSegments)
	if active+1 > keep {
		_ = fr.wal.RemoveBefore(active + 1 - keep)
	}
}

// RecordEvent journals one wide event. Safe on nil; hook this to
// obs.EventLog.OnEmit.
func (fr *FlightRecorder) RecordEvent(ev obs.Event) {
	if fr == nil {
		return
	}
	fr.append(flightRec{K: "fev", Ev: &ev})
}

// RecordSpan journals one retained span. Safe on nil; hook this to
// obs.Tracer.SetOnRecord.
func (fr *FlightRecorder) RecordSpan(sp obs.Span) {
	if fr == nil {
		return
	}
	fr.append(flightRec{K: "fsp", Sp: &sp})
}

// Mark journals a crash-context marker and flushes: the box is being
// sealed because something went wrong.
func (fr *FlightRecorder) Mark(note string, cause error) {
	if fr == nil {
		return
	}
	errStr := ""
	if cause != nil {
		errStr = cause.Error()
	}
	fr.append(flightRec{K: "fmk", Mk: &FlightMark{
		Note: note,
		Err:  errStr,
		Time: fr.opts.WAL.Clock.Now(),
	}})
	_ = fr.Flush()
}

// Hook subscribes the recorder to a tracer and an event log: every
// retained span and every emitted wide event is journaled. Either may
// be nil.
func (fr *FlightRecorder) Hook(tr *obs.Tracer, events *obs.EventLog) {
	if fr == nil {
		return
	}
	tr.SetOnRecord(fr.RecordSpan)
	if events != nil {
		events.OnEmit(fr.RecordEvent)
	}
}

// AttachPlatform chains the recorder onto the platform's crash hooks:
// an agent restart (panic) or give-up seals the box with a marker and
// an fsync, so the journal survives even a machine crash that follows.
// Call after any other hook owners (durable.Store) have attached.
func (fr *FlightRecorder) AttachPlatform(p *agent.Platform) {
	if fr == nil || p == nil {
		return
	}
	prevRestart := p.OnAgentRestart
	p.OnAgentRestart = func(id agent.ID, err error) {
		if prevRestart != nil {
			prevRestart(id, err)
		}
		fr.Mark("agent-restart:"+string(id), err)
	}
	prevDown := p.OnAgentDown
	p.OnAgentDown = func(id agent.ID, err error) {
		if prevDown != nil {
			prevDown(id, err)
		}
		fr.Mark("agent-giveup:"+string(id), err)
	}
}

// Flush fsyncs the journal.
func (fr *FlightRecorder) Flush() error {
	if fr == nil {
		return nil
	}
	return fr.wal.Sync()
}

// Close flushes and closes the journal.
func (fr *FlightRecorder) Close() error {
	if fr == nil {
		return nil
	}
	return fr.wal.Close()
}

// DumpText renders the recovered black box for humans — the
// `pgridd -flight-dump` output. Events come first (one line each),
// then per-trace span timelines for the traces those events reference
// plus any orphan in-flight traces.
func (fr *FlightRecorder) DumpText() string {
	if fr == nil {
		return "flight recorder: not open\n"
	}
	fr.mu.Lock()
	events := append([]obs.Event(nil), fr.events...)
	spans := append([]obs.Span(nil), fr.spans...)
	marks := append([]FlightMark(nil), fr.marks...)
	bad := fr.badRecs
	fr.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d wide events, %d spans, %d marks recovered",
		len(events), len(spans), len(marks))
	if bad > 0 {
		fmt.Fprintf(&b, " (%d undecodable records skipped)", bad)
	}
	b.WriteByte('\n')
	for _, m := range marks {
		fmt.Fprintf(&b, "MARK %s  %s", m.Time.Format(time.RFC3339Nano), m.Note)
		if m.Err != "" {
			fmt.Fprintf(&b, "  err=%s", m.Err)
		}
		b.WriteByte('\n')
	}
	if len(events) > 0 {
		b.WriteString("\nwide events (oldest first):\n")
		for _, ev := range events {
			fmt.Fprintf(&b, "  %s  trace=%016x  %s->%s  %s  %.3fms  retries=%d sheds=%d hops=%d",
				ev.Start.Format("15:04:05.000"), ev.Trace, ev.From, ev.To, ev.Outcome, ev.Ms,
				ev.Retries, ev.Sheds, ev.Hops)
			if ev.Breaker != "" {
				fmt.Fprintf(&b, " breaker=%s", ev.Breaker)
			}
			if ev.Err != "" {
				fmt.Fprintf(&b, "  err=%s", ev.Err)
			}
			b.WriteByte('\n')
		}
	}
	if len(spans) > 0 {
		// Group spans per trace, traces in first-seen order, spans in
		// time order — the same shape as obs.Tracer.Timeline, rebuilt
		// from the journal.
		order := []uint64{}
		byTrace := map[uint64][]obs.Span{}
		for _, s := range spans {
			if _, ok := byTrace[s.Trace]; !ok {
				order = append(order, s.Trace)
			}
			byTrace[s.Trace] = append(byTrace[s.Trace], s)
		}
		b.WriteString("\nspan timelines (oldest trace first):\n")
		for _, id := range order {
			ss := byTrace[id]
			sort.SliceStable(ss, func(i, j int) bool { return ss[i].Time.Before(ss[j].Time) })
			fmt.Fprintf(&b, "  trace %016x (%d spans)\n", id, len(ss))
			t0 := ss[0].Time
			for _, s := range ss {
				fmt.Fprintf(&b, "    +%9.6fs  [%s]  %-8s seq=%-4d %s -> %s",
					s.Time.Sub(t0).Seconds(), s.Node, s.Kind, s.Seq, s.From, s.To)
				if s.Note != "" {
					fmt.Fprintf(&b, "  (%s)", s.Note)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
