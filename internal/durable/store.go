package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
)

// Record kinds journaled to the WAL. Each record is one JSON object
// with a kind tag; unknown kinds and malformed bodies are tolerated on
// replay (counted, skipped) so a newer node can read an older log and
// vice versa.
const (
	kindCheckpoint = "ckpt"
	kindDeadLetter = "dead"
	kindRegister   = "reg"
	kindDeregister = "dereg"
)

// walRecord is the on-disk shape of one journal entry.
type walRecord struct {
	Kind string            `json:"k"`
	ID   string            `json:"id,omitempty"`   // checkpoint agent / deregistered name
	Snap json.RawMessage   `json:"snap,omitempty"` // checkpoint payload
	Dead *agent.DeadLetter `json:"dead,omitempty"`
	Reg  *Registration     `json:"reg,omitempty"`
}

// Registration is a journaled service advertisement: the profile plus
// the absolute lease expiry, so recovery can re-register with the
// remaining TTL (or skip the entry if the lease died while the node
// was down).
type Registration struct {
	Profile *ontology.Profile
	Expires time.Time
}

// snapshotFile is the compaction snapshot: the full recovered state as
// of segment Seg — replay resumes at Seg, older segments are garbage.
const snapshotName = "snapshot.json"

type snapshotFile struct {
	Seg           uint64
	Checkpoints   map[string]json.RawMessage
	DeadLetters   []agent.DeadLetter
	Registrations map[string]Registration
}

// StoreStats is a point-in-time snapshot of store activity.
type StoreStats struct {
	WAL WALStats
	// Checkpoints / DeadLetters / Registrations are current in-memory
	// mirror sizes.
	Checkpoints   int
	DeadLetters   int
	Registrations int
	// BadRecords counts replayed records that were CRC-clean but not
	// decodable (version skew, partial schema) — skipped, not fatal.
	BadRecords uint64
	// AppendErrors counts journal writes that failed (disk faults). The
	// in-memory state stays correct; only durability of those entries
	// is lost.
	AppendErrors uint64
}

// Store is the durable mirror of a node's soft state: agent
// checkpoints, the dead-letter ring, and discovery registrations, all
// journaled through one WAL and compacted into a snapshot. Open it,
// then AttachPlatform / AttachRegistry — recovery replays into them and
// the hooks keep journaling from then on.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	wal   *WAL
	ckpts map[agent.ID]json.RawMessage
	dead  []agent.DeadLetter
	regs  map[string]Registration

	bad       uint64
	appendErr uint64
}

// Open recovers a store from dir: snapshot first (if present), then
// every WAL record at or after the snapshot's segment watermark. Torn
// tails and malformed records are tolerated — a crashed node always
// boots with the surviving prefix of its history.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		dir:   dir,
		opts:  opts,
		ckpts: map[agent.ID]json.RawMessage{},
		regs:  map[string]Registration{},
	}
	var firstSeg uint64
	if data, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			// A torn snapshot (crash mid-compaction loses the rename
			// atomicity only on exotic filesystems) degrades to full
			// WAL replay, not a refusal to boot.
			s.bad++
		} else {
			firstSeg = snap.Seg
			for id, raw := range snap.Checkpoints {
				s.ckpts[agent.ID(id)] = raw
			}
			s.dead = append(s.dead, snap.DeadLetters...)
			for name, reg := range snap.Registrations {
				s.regs[name] = reg
			}
		}
	}
	wal, err := OpenWAL(dir, firstSeg, opts, func(seg uint64, rec []byte) {
		s.apply(rec)
	})
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// apply folds one replayed record into the in-memory mirror.
func (s *Store) apply(rec []byte) {
	var r walRecord
	if err := json.Unmarshal(rec, &r); err != nil {
		s.bad++
		return
	}
	switch r.Kind {
	case kindCheckpoint:
		if r.ID == "" || len(r.Snap) == 0 {
			s.bad++
			return
		}
		s.ckpts[agent.ID(r.ID)] = r.Snap
	case kindDeadLetter:
		if r.Dead == nil {
			s.bad++
			return
		}
		s.dead = append(s.dead, *r.Dead)
		if over := len(s.dead) - s.opts.DeadLetterCap; over > 0 {
			s.dead = append(s.dead[:0:0], s.dead[over:]...)
		}
	case kindRegister:
		if r.Reg == nil || r.Reg.Profile == nil || r.Reg.Profile.Name == "" {
			s.bad++
			return
		}
		s.regs[r.Reg.Profile.Name] = *r.Reg
	case kindDeregister:
		if r.ID == "" {
			s.bad++
			return
		}
		delete(s.regs, r.ID)
	default:
		s.bad++
	}
}

// journal appends one record to the WAL and mirrors it in memory. An
// append failure (injected or real disk fault) is counted, not
// propagated: the live node keeps running on its in-memory state and
// only that entry's durability is lost.
func (s *Store) journal(r walRecord) {
	rec, err := json.Marshal(r)
	if err != nil {
		s.mu.Lock()
		s.appendErr++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply(rec)
	if err := s.wal.Append(rec); err != nil {
		s.appendErr++
	}
}

// JournalCheckpoint records an agent checkpoint. Snapshots must be
// JSON-marshalable; agent.RecoveredSnapshot and json.RawMessage pass
// through as raw bytes (a recovered snapshot re-journals verbatim).
func (s *Store) JournalCheckpoint(id agent.ID, snapshot any) {
	var raw json.RawMessage
	switch v := snapshot.(type) {
	case agent.RecoveredSnapshot:
		raw = json.RawMessage(v)
	case json.RawMessage:
		raw = v
	default:
		b, err := json.Marshal(snapshot)
		if err != nil {
			s.mu.Lock()
			s.appendErr++
			s.mu.Unlock()
			return
		}
		raw = b
	}
	s.journal(walRecord{Kind: kindCheckpoint, ID: string(id), Snap: raw})
}

// JournalDeadLetter records an undeliverable envelope.
func (s *Store) JournalDeadLetter(dl agent.DeadLetter) {
	s.journal(walRecord{Kind: kindDeadLetter, Dead: &dl})
}

// JournalRegistration records a service advertisement (or lease renewal
// — the latest expiry wins on replay).
func (s *Store) JournalRegistration(p *ontology.Profile, expires time.Time) {
	s.journal(walRecord{Kind: kindRegister, Reg: &Registration{Profile: p, Expires: expires}})
}

// JournalDeregister records an explicit service withdrawal.
func (s *Store) JournalDeregister(name string) {
	s.journal(walRecord{Kind: kindDeregister, ID: name})
}

// AttachPlatform wires the store under a platform: recovered dead
// letters refill the ring, recovered checkpoints seed their agents
// (delivered to Restore as agent.RecoveredSnapshot), and from then on
// every checkpoint and dead letter is journaled. An agent restart
// forces an fsync — the crashing agent's last checkpoint is exactly the
// one that must not be lost. Call before registering agents and before
// traffic starts; existing hooks are chained, not replaced.
func (s *Store) AttachPlatform(p *agent.Platform) {
	p.RestoreDeadLetters(s.DeadLetters())
	for id, raw := range s.Checkpoints() {
		p.SeedCheckpoint(id, agent.RecoveredSnapshot(raw))
	}
	prevCkpt := p.OnCheckpoint
	p.OnCheckpoint = func(id agent.ID, snapshot any) {
		s.JournalCheckpoint(id, snapshot)
		if prevCkpt != nil {
			prevCkpt(id, snapshot)
		}
	}
	prevDead := p.OnDeadLetter
	p.OnDeadLetter = func(dl agent.DeadLetter) {
		s.JournalDeadLetter(dl)
		if prevDead != nil {
			prevDead(dl)
		}
	}
	prevRestart := p.OnAgentRestart
	p.OnAgentRestart = func(id agent.ID, err error) {
		_ = s.Sync()
		if prevRestart != nil {
			prevRestart(id, err)
		}
	}
}

// AttachRegistry wires the store under a discovery registry: recovered
// registrations whose leases are still live are re-registered with
// their remaining TTL (the node re-advertises its services on rejoin),
// and from then on every Register/Renew/Deregister is journaled.
// Existing hooks are chained, not replaced.
func (s *Store) AttachRegistry(r *discovery.Registry) {
	// Replay before installing hooks: recovery must not re-journal what
	// the journal just said.
	now := s.opts.Clock.Now()
	for _, reg := range s.Registrations() {
		ttl := reg.Expires.Sub(now)
		if ttl <= 0 {
			continue // lease died while the node was down
		}
		_, _ = r.Register(reg.Profile, ttl)
	}
	prevReg := r.OnRegister
	r.OnRegister = func(p *ontology.Profile, l discovery.Lease) {
		s.JournalRegistration(p, l.Expires)
		if prevReg != nil {
			prevReg(p, l)
		}
	}
	prevDereg := r.OnDeregister
	r.OnDeregister = func(name string) {
		s.JournalDeregister(name)
		if prevDereg != nil {
			prevDereg(name)
		}
	}
}

// Compact folds the journal into a fresh snapshot: rotate the WAL (the
// new segment index becomes the snapshot watermark), write the full
// state to snapshot.json via tmp-write + fsync + atomic rename, then
// delete the segments the snapshot covers. Crash-safe at every step: a
// crash before the rename recovers from the old snapshot + all
// segments, after it from the new snapshot + the tail.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, err := s.wal.Rotate()
	if err != nil {
		return err
	}
	snap := snapshotFile{
		Seg:           seg,
		Checkpoints:   map[string]json.RawMessage{},
		Registrations: map[string]Registration{},
	}
	for id, raw := range s.ckpts {
		snap.Checkpoints[string(id)] = raw
	}
	snap.DeadLetters = append(snap.DeadLetters, s.dead...)
	for name, reg := range s.regs {
		snap.Registrations[name] = reg
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("durable: marshal snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: install snapshot: %w", err)
	}
	syncDir(s.dir)
	return s.wal.RemoveBefore(seg)
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Sync forces journaled records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Sync()
}

// Close fsyncs and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore blockheld the syncer proc WAL.Close waits for never takes Store.mu, and holding it serializes Close against appenders
	return s.wal.Close()
}

// AttachMetrics mirrors WAL activity into reg (durable_wal_* series).
func (s *Store) AttachMetrics(reg *obs.Registry) {
	s.wal.AttachMetrics(reg)
}

// Checkpoints returns a copy of the recovered/journaled checkpoint map.
func (s *Store) Checkpoints() map[agent.ID]json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[agent.ID]json.RawMessage, len(s.ckpts))
	for id, raw := range s.ckpts {
		out[id] = raw
	}
	return out
}

// DeadLetters returns a copy of the journaled dead letters, oldest
// first (bounded by Options.DeadLetterCap).
func (s *Store) DeadLetters() []agent.DeadLetter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]agent.DeadLetter(nil), s.dead...)
}

// Registrations returns a copy of the journaled advertisements by name.
func (s *Store) Registrations() map[string]Registration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Registration, len(s.regs))
	for name, reg := range s.regs {
		out[name] = reg
	}
	return out
}

// Stats snapshots store and WAL activity.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		WAL:           s.wal.Stats(),
		Checkpoints:   len(s.ckpts),
		DeadLetters:   len(s.dead),
		Registrations: len(s.regs),
		BadRecords:    s.bad,
		AppendErrors:  s.appendErr,
	}
}

// Summary is the one-line shutdown/boot report pgridd prints.
func (s *Store) Summary() string {
	st := s.Stats()
	return fmt.Sprintf("durable: seg=%d appends=%d replayed=%d truncated=%d ckpts=%d deadletters=%d regs=%d bad=%d appenderr=%d",
		st.WAL.ActiveSegment, st.WAL.Appends, st.WAL.Replayed, st.WAL.Truncated,
		st.Checkpoints, st.DeadLetters, st.Registrations, st.BadRecords, st.AppendErrors)
}
