package durable_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/durable"
	"pervasivegrid/internal/leak"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
)

// expectedState is the pure-Go model the store must agree with after
// recovering any prefix of a journaled op sequence.
type expectedState struct {
	ckpts map[string]string // agent id -> snapshot JSON
	dead  []uint64          // dead-letter envelope seqs, oldest first
	regs  map[string]time.Time
}

func newExpectedState() *expectedState {
	return &expectedState{ckpts: map[string]string{}, regs: map[string]time.Time{}}
}

// storeOp is one journaled operation plus its model effect.
type storeOp struct {
	journal func(s *durable.Store)
	model   func(e *expectedState)
}

var propBase = time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)

// randomOps builds a deterministic mixed op sequence.
func randomOps(rng *rand.Rand, n, dlCap int) []storeOp {
	agents := []string{"solver-1", "solver-2", "query-agent"}
	services := []string{"printer", "sensor", "gateway"}
	var ops []storeOp
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // checkpoint
			id := agents[rng.Intn(len(agents))]
			snap := fmt.Sprintf(`{"count":%d}`, i)
			ops = append(ops, storeOp{
				journal: func(s *durable.Store) {
					s.JournalCheckpoint(agent.ID(id), json.RawMessage(snap))
				},
				model: func(e *expectedState) { e.ckpts[id] = snap },
			})
		case 1: // dead letter
			seq := uint64(1000 + i)
			ops = append(ops, storeOp{
				journal: func(s *durable.Store) {
					s.JournalDeadLetter(agent.DeadLetter{
						Env:    agent.Envelope{Seq: seq, To: "nobody"},
						Reason: agent.DropNoRoute,
					})
				},
				model: func(e *expectedState) {
					e.dead = append(e.dead, seq)
					if len(e.dead) > dlCap {
						e.dead = e.dead[len(e.dead)-dlCap:]
					}
				},
			})
		case 2: // register / renew
			name := services[rng.Intn(len(services))]
			expires := propBase.Add(time.Duration(i) * time.Minute)
			ops = append(ops, storeOp{
				journal: func(s *durable.Store) {
					s.JournalRegistration(&ontology.Profile{Name: name, Concept: "Service"}, expires)
				},
				model: func(e *expectedState) { e.regs[name] = expires },
			})
		default: // deregister
			name := services[rng.Intn(len(services))]
			ops = append(ops, storeOp{
				journal: func(s *durable.Store) { s.JournalDeregister(name) },
				model:   func(e *expectedState) { delete(e.regs, name) },
			})
		}
	}
	return ops
}

// checkState asserts a recovered store matches the model.
func checkState(t *testing.T, tag string, s *durable.Store, want *expectedState) {
	t.Helper()
	ckpts := s.Checkpoints()
	if len(ckpts) != len(want.ckpts) {
		t.Fatalf("%s: %d checkpoints, want %d", tag, len(ckpts), len(want.ckpts))
	}
	for id, snap := range want.ckpts {
		if got := string(ckpts[agent.ID(id)]); got != snap {
			t.Fatalf("%s: checkpoint %q = %s, want %s", tag, id, got, snap)
		}
	}
	var deadSeqs []uint64
	for _, dl := range s.DeadLetters() {
		deadSeqs = append(deadSeqs, dl.Env.Seq)
	}
	if !reflect.DeepEqual(deadSeqs, want.dead) {
		t.Fatalf("%s: dead letters %v, want %v", tag, deadSeqs, want.dead)
	}
	regs := s.Registrations()
	if len(regs) != len(want.regs) {
		t.Fatalf("%s: %d registrations, want %d", tag, len(regs), len(want.regs))
	}
	for name, expires := range want.regs {
		got, ok := regs[name]
		if !ok || !got.Expires.Equal(expires) {
			t.Fatalf("%s: registration %q = %+v, want expires %v", tag, name, got, expires)
		}
	}
}

// TestStoreCrashAtEveryByteOffset is the tentpole property test: a
// random mixed op sequence, the journal cut at EVERY byte offset (a
// crash mid-write), and recovery must yield exactly the model state of
// the longest surviving record prefix.
func TestStoreCrashAtEveryByteOffset(t *testing.T) {
	defer leak.Check(t)()
	const dlCap = 8
	rng := rand.New(rand.NewSource(20260809))
	ops := randomOps(rng, 25, dlCap)

	base := t.TempDir()
	dir := filepath.Join(base, "node")
	opts := durable.Options{DeadLetterCap: dlCap}
	s, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var ends []int64 // journal size after each op (record boundaries)
	for _, op := range ops {
		op.journal(s)
		ends = append(ends, s.Stats().WAL.ActiveBytes)
	}
	if st := s.Stats(); st.AppendErrors != 0 || st.WAL.Rotations != 0 {
		t.Fatalf("expected one clean segment, stats=%+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	whole, err := os.ReadFile(filepath.Join(dir, "wal-00000001.log"))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}

	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		// The model state after the ops whose records fully survived.
		want := newExpectedState()
		for i, end := range ends {
			if end <= cut {
				ops[i].model(want)
			}
		}
		cutDir := filepath.Join(base, "cut")
		if err := os.MkdirAll(cutDir, 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(filepath.Join(cutDir, "wal-00000001.log"), whole[:cut], 0o644); err != nil {
			t.Fatalf("write cut: %v", err)
		}
		s2, err := durable.Open(cutDir, opts)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		checkState(t, fmt.Sprintf("cut at %d", cut), s2, want)
		if st := s2.Stats(); st.BadRecords != 0 {
			t.Fatalf("cut at %d: bad records %d (CRC should reject, not decode)", cut, st.BadRecords)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut at %d: Close: %v", cut, err)
		}
		os.RemoveAll(cutDir)
	}
}

// TestStoreCompaction proves snapshot + tail recovery: compact
// mid-sequence, journal more, recover — and the pre-compaction
// segments must be gone from disk.
func TestStoreCompaction(t *testing.T) {
	defer leak.Check(t)()
	const dlCap = 8
	rng := rand.New(rand.NewSource(99))
	ops := randomOps(rng, 40, dlCap)
	dir := t.TempDir()
	opts := durable.Options{DeadLetterCap: dlCap, SegmentBytes: 256, Sync: durable.SyncOnRotate}

	want := newExpectedState()
	s, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, op := range ops {
		op.journal(s)
		op.model(want)
		if i == 19 {
			if err := s.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	s2, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	checkState(t, "after compaction", s2, want)
}

// counterAgent is a Checkpointer whose state survives both in-process
// restarts (live snapshot) and process death (RecoveredSnapshot).
type counterAgent struct {
	mu    sync.Mutex
	count int
}

type counterState struct {
	Count int `json:"count"`
}

func (c *counterAgent) Handle(env agent.Envelope, ctx *agent.Context) {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
}

func (c *counterAgent) Checkpoint() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return counterState{Count: c.count}
}

func (c *counterAgent) Restore(snapshot any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch s := snapshot.(type) {
	case agent.RecoveredSnapshot:
		var st counterState
		if json.Unmarshal(s, &st) == nil {
			c.count = st.Count
		}
	case counterState:
		c.count = s.Count
	}
}

func (c *counterAgent) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// TestStoreAttachPlatformRoundTrip runs a platform over a store, kills
// it (Close), and proves a second platform over a reopened store starts
// with the first one's checkpoints and dead letters.
func TestStoreAttachPlatformRoundTrip(t *testing.T) {
	defer leak.Check(t)()
	dir := t.TempDir()

	// Life 1: handle traffic, take dead letters, close.
	s, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p := agent.NewPlatform("life1")
	s.AttachPlatform(p)
	c := &counterAgent{}
	if err := p.Register("counter", c, agent.Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		env, err := agent.NewEnvelope("test", "counter", "inform", "x-data", i)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Send(env); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	env, _ := agent.NewEnvelope("test", "ghost", "inform", "x-data", nil)
	if err := p.Send(env); err == nil {
		t.Fatal("send to ghost should fail")
	}
	waitFor(t, func() bool { return c.value() == 5 }, "counter to reach 5")
	waitFor(t, func() bool { return s.Stats().Checkpoints == 1 }, "checkpoint journaled")
	p.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Life 2: recover; the counter must resume from 5, the ghost letter
	// must still be in the ring.
	s2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	p2 := agent.NewPlatform("life2")
	s2.AttachPlatform(p2)
	c2 := &counterAgent{}
	if err := p2.Register("counter", c2, agent.Attributes{}, nil); err != nil {
		t.Fatal(err)
	}
	env2, _ := agent.NewEnvelope("test", "counter", "inform", "x-data", 99)
	if err := p2.Send(env2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c2.value() == 6 }, "recovered counter to reach 5+1")
	dls := p2.DeadLetters()
	if len(dls) != 1 || dls[0].Env.To != "ghost" || dls[0].Reason != agent.DropNoRoute {
		t.Fatalf("recovered dead letters = %+v, want the ghost no_route letter", dls)
	}
	p2.Close()
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestStoreAttachRegistryRoundTrip proves registrations survive a
// restart with their remaining TTL, expired leases are skipped, and
// explicit deregistrations hold across lives.
func TestStoreAttachRegistryRoundTrip(t *testing.T) {
	defer leak.Check(t)()
	dir := t.TempDir()

	s, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	r := discovery.NewRegistry()
	s.AttachRegistry(r)
	if _, err := r.Register(&ontology.Profile{Name: "svc-long", Concept: "Service"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(&ontology.Profile{Name: "svc-short", Concept: "Service"}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(&ontology.Profile{Name: "svc-gone", Concept: "Service"}, time.Hour); err != nil {
		t.Fatal(err)
	}
	r.Deregister("svc-gone")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	time.Sleep(5 * time.Millisecond) // let svc-short's lease die
	s2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	r2 := discovery.NewRegistry()
	s2.AttachRegistry(r2)
	profiles := r2.Profiles()
	if len(profiles) != 1 || profiles[0].Name != "svc-long" {
		names := make([]string, 0, len(profiles))
		for _, p := range profiles {
			names = append(names, p.Name)
		}
		t.Fatalf("recovered profiles = %v, want [svc-long]", names)
	}
}

// waitFor polls cond until true or a 5s deadline.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStoreMetricsAndSummary pins the operator-facing surface: the
// durable_wal_* counter series pgridd scrapes and the one-line boot /
// shutdown summary it prints.
func TestStoreMetricsAndSummary(t *testing.T) {
	defer leak.Check(t)()
	dir := t.TempDir()
	st, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st.AttachMetrics(reg)

	st.JournalCheckpoint("node", map[string]int{"count": 3})
	st.JournalDeregister("ghost-service")
	if err := st.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}

	snap := reg.Snapshot()
	if snap.Counters["durable_wal_appends_total"] < 2 {
		t.Fatalf("appends counter = %v, want >= 2 (counters: %v)",
			snap.Counters["durable_wal_appends_total"], snap.Counters)
	}
	if snap.Counters["durable_wal_syncs_total"] < 1 {
		t.Fatalf("syncs counter = %v, want >= 1", snap.Counters["durable_wal_syncs_total"])
	}
	if snap.Counters["durable_wal_rotations_total"] < 1 {
		t.Fatalf("rotations counter = %v, want >= 1 (Compact rotates)",
			snap.Counters["durable_wal_rotations_total"])
	}

	sum := st.Summary()
	if !strings.Contains(sum, "durable: seg=") || !strings.Contains(sum, "ckpts=1") {
		t.Fatalf("summary = %q", sum)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The summary survives a reopen: the snapshot carries the checkpoint.
	st2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if sum2 := st2.Summary(); !strings.Contains(sum2, "ckpts=1") {
		t.Fatalf("reopened summary = %q", sum2)
	}
}

// TestSyncPolicyString pins the flag spellings pgridd documents.
func TestSyncPolicyString(t *testing.T) {
	if durable.SyncAlways.String() != "always" || durable.SyncOnRotate.String() != "rotate" {
		t.Fatalf("policy names drifted: %q %q", durable.SyncAlways, durable.SyncOnRotate)
	}
	if s := durable.SyncPolicy(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown policy string = %q", s)
	}
}
