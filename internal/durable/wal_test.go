package durable_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pervasivegrid/internal/durable"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/leak"
	"pervasivegrid/internal/obs"
)

// collectWAL opens the WAL in dir and returns the replayed records.
func collectWAL(t *testing.T, dir string, firstSeg uint64, opts durable.Options) ([][]byte, *durable.WAL) {
	t.Helper()
	var got [][]byte
	w, err := durable.OpenWAL(dir, firstSeg, opts, func(seg uint64, rec []byte) {
		got = append(got, append([]byte(nil), rec...))
	})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return got, w
}

func TestWALRoundTrip(t *testing.T) {
	defer leak.Check(t)()
	dir := t.TempDir()
	w, err := durable.OpenWAL(dir, 0, durable.Options{}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i))))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, w2 := collectWAL(t, dir, 0, durable.Options{})
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if st := w2.Stats(); st.Replayed != uint64(len(want)) {
		t.Fatalf("Stats.Replayed = %d, want %d", st.Replayed, len(want))
	}
}

// TestWALTornTailEveryOffset is the core recovery property: a log whose
// final bytes are cut at ANY offset recovers the longest record prefix
// whose frames survived intact, and keeps accepting appends.
func TestWALTornTailEveryOffset(t *testing.T) {
	defer leak.Check(t)()
	base := t.TempDir()
	dir := filepath.Join(base, "wal")
	w, err := durable.OpenWAL(dir, 0, durable.Options{}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	var recs [][]byte
	var ends []int64 // file size after each append (frame boundaries)
	for i := 0; i < 12; i++ {
		rec := make([]byte, 1+rng.Intn(40))
		rng.Read(rec)
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		ends = append(ends, w.Stats().ActiveBytes)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(dir, "wal-00000001.log")
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}

	// goodPrefix(cut) = how many whole frames survive a cut at byte cut.
	goodPrefix := func(cut int64) int {
		n := 0
		for _, end := range ends {
			if end <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		cutDir := filepath.Join(base, fmt.Sprintf("cut-%04d", cut))
		if err := os.MkdirAll(cutDir, 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(filepath.Join(cutDir, "wal-00000001.log"), whole[:cut], 0o644); err != nil {
			t.Fatalf("write cut: %v", err)
		}
		got, w2 := collectWAL(t, cutDir, 0, durable.Options{})
		want := goodPrefix(cut)
		if len(got) != want {
			w2.Close()
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 0; i < want; i++ {
			if string(got[i]) != string(recs[i]) {
				w2.Close()
				t.Fatalf("cut at %d: record %d corrupted", cut, i)
			}
		}
		// The torn tail must be gone and the log must accept appends.
		if cut > ends[len(ends)-1] || (want > 0 && cut != ends[want-1]) {
			if w2.Stats().Truncated != 1 {
				w2.Close()
				t.Fatalf("cut at %d: expected a truncation, stats=%+v", cut, w2.Stats())
			}
		}
		if err := w2.Append([]byte("after-recovery")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
		os.RemoveAll(cutDir)
	}
}

func TestWALRotationAndRemoveBefore(t *testing.T) {
	defer leak.Check(t)()
	dir := t.TempDir()
	// Tiny segments force rotation every couple of appends.
	opts := durable.Options{SegmentBytes: 64, Sync: durable.SyncOnRotate}
	w, err := durable.OpenWAL(dir, 0, opts, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("rotating-record-%02d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := w.Stats()
	if st.Rotations == 0 || st.ActiveSegment < 2 {
		t.Fatalf("expected rotations, stats=%+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, w2 := collectWAL(t, dir, 0, opts)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Rotate and drop everything below the new segment; replay from the
	// watermark must see only post-rotation records.
	seg, err := w2.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := w2.Append([]byte("post-compaction")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w2.RemoveBefore(seg); err != nil {
		t.Fatalf("RemoveBefore: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got3, w3 := collectWAL(t, dir, seg, durable.Options{})
	defer w3.Close()
	if len(got3) != 1 || string(got3[0]) != "post-compaction" {
		t.Fatalf("post-compaction replay = %q, want [post-compaction]", got3)
	}
}

func TestWALSyncInterval(t *testing.T) {
	defer leak.Check(t)()
	clk := obs.NewFakeClock()
	dir := t.TempDir()
	w, err := durable.OpenWAL(dir, 0, durable.Options{
		Sync:      durable.SyncInterval,
		SyncEvery: 50 * time.Millisecond,
		Clock:     clk,
	}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if err := w.Append([]byte("interval-record")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if st := w.Stats(); st.Syncs != 0 {
		t.Fatalf("premature sync: %+v", st)
	}
	// Wait for the sync loop to arm its timer, then fire it.
	deadline := time.Now().Add(2 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sync loop never armed its timer")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(50 * time.Millisecond)
	for w.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never fired: %+v", w.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestWALInjectedDiskFaults drives appends through the disk-fault seam:
// torn writes and write errors must dirty/truncate the segment such
// that every acknowledged record before the fault still recovers.
func TestWALInjectedDiskFaults(t *testing.T) {
	defer leak.Check(t)()
	dir := t.TempDir()
	inj := faultinject.NewDisk(faultinject.DiskConfig{Seed: 7, ShortWriteEveryN: 5})
	opts := durable.Options{
		Sync: durable.SyncOnRotate,
		WrapFile: func(f durable.File) durable.File {
			return inj.WrapFile(f).(durable.File)
		},
	}
	w, err := durable.OpenWAL(dir, 0, opts, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	var acked [][]byte
	for i := 0; i < 40; i++ {
		rec := []byte(fmt.Sprintf("faulty-append-%02d", i))
		if err := w.Append(rec); err == nil {
			acked = append(acked, rec)
		}
	}
	st := w.Stats()
	if st.WriteErrors == 0 {
		t.Fatalf("injector never fired: wal=%+v disk=%+v", st, inj.Stats())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, w2 := collectWAL(t, dir, 0, durable.Options{})
	defer w2.Close()
	if len(got) != len(acked) {
		t.Fatalf("recovered %d records, want the %d acknowledged ones (disk=%+v)",
			len(got), len(acked), inj.Stats())
	}
	for i := range acked {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]durable.SyncPolicy{
		"":         durable.SyncAlways,
		"always":   durable.SyncAlways,
		"interval": durable.SyncInterval,
		"rotate":   durable.SyncOnRotate,
		" Rotate ": durable.SyncOnRotate,
	}
	for in, want := range cases {
		got, err := durable.ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := durable.ParseSyncPolicy("fsync-madly"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
	if durable.SyncInterval.String() != "interval" {
		t.Fatalf("String() = %q", durable.SyncInterval.String())
	}
}
