package durable_test

import (
	"testing"

	"pervasivegrid/internal/leak"
)

// The durable suite spawns WAL sync loops, supervised agents, and (in
// the chaos test) whole child processes; the leak gate proves every
// Close/Stop actually reaps its goroutines.
func TestMain(m *testing.M) { leak.VerifyTestMain(m) }
