// Command pgridquery is the handheld-device client: it connects to a
// pgridd daemon over TCP and submits a query in the paper's language.
//
// Usage:
//
//	pgridquery -addr 127.0.0.1:7070 "SELECT avg(temp) FROM sensors"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "pgridd address")
	timeout := flag.Duration("timeout", 30*time.Second, "reply timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: pgridquery [-addr host:port] "SELECT avg(temp) FROM sensors"`)
		os.Exit(2)
	}
	src := flag.Arg(0)

	platform := agent.NewPlatform("pgridquery")
	defer platform.Close()
	link, err := agent.Dial(platform, *addr, nil)
	if err != nil {
		log.Fatalf("pgridquery: %v", err)
	}
	defer link.Close()

	self := agent.ID(fmt.Sprintf("handheld-%d", os.Getpid()))
	replies := make(chan core.QueryReply, 1)
	err = platform.Register(self, agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var r core.QueryReply
		if err := env.Decode(&r); err == nil {
			replies <- r
		}
	}), agent.Attributes{Agent: map[string]string{agent.AttrRole: agent.RoleClient}}, nil)
	if err != nil {
		log.Fatalf("pgridquery: %v", err)
	}

	env, err := agent.NewEnvelope(self, core.QueryAgentID, "request", core.QueryOntology,
		core.QueryRequest{Query: src})
	if err != nil {
		log.Fatalf("pgridquery: %v", err)
	}
	if err := platform.Send(env); err != nil {
		log.Fatalf("pgridquery: send: %v", err)
	}

	select {
	case r := <-replies:
		if !r.OK {
			log.Fatalf("pgridquery: query failed: %s", r.Error)
		}
		fmt.Printf("kind:     %s\n", r.Kind)
		fmt.Printf("model:    %s\n", r.Model)
		fmt.Printf("value:    %g\n", r.Value)
		fmt.Printf("coverage: %d sensors\n", r.Coverage)
		fmt.Printf("energy:   %g J\n", r.EnergyJ)
		fmt.Printf("latency:  %g s\n", r.TimeSec)
		if r.Rounds > 0 {
			fmt.Printf("rounds:   %d\n", r.Rounds)
		}
		if len(r.Groups) > 0 {
			keys := make([]string, 0, len(r.Groups))
			for k := range r.Groups {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %s: %g\n", k, r.Groups[k])
			}
		}
		if r.Cached {
			fmt.Println("cached:   true")
		}
	case <-time.After(*timeout):
		log.Fatal("pgridquery: timed out waiting for reply")
	}
}
