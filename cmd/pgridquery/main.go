// Command pgridquery is the handheld-device client: it connects to a
// pgridd daemon over TCP and submits a query in the paper's language. The
// connection is a reconnecting link and the conversation rides the retry
// layer, so a lossy or briefly unreachable daemon costs latency, not a
// failed query.
//
// Usage:
//
//	pgridquery -addr 127.0.0.1:7070 "SELECT avg(temp) FROM sensors"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "pgridd address")
	timeout := flag.Duration("timeout", 30*time.Second, "overall conversation timeout")
	attempts := flag.Int("attempts", 4, "max send attempts (retry with backoff)")
	trace := flag.Bool("trace", false, "dump the conversation's span timeline (client-side hops) after the reply")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: pgridquery [-addr host:port] "SELECT avg(temp) FROM sensors"`)
		os.Exit(2)
	}
	src := flag.Arg(0)

	platform := agent.NewPlatform("pgridquery")
	defer platform.Close()
	if *trace {
		platform.Tracer = obs.NewTracer(4096)
	}
	link := agent.DialReconnect(platform, *addr, agent.ReconnectOptions{})
	defer link.Close()

	policy := agent.DefaultRetryPolicy()
	policy.MaxAttempts = *attempts
	r, err := core.AskQuery(platform, src, *timeout, policy)
	if err != nil {
		st := platform.DeliveryStats()
		log.Fatalf("pgridquery: %v (retries=%d dead-letters=%d)", err, st.Retries, st.DeadLettered)
	}
	if !r.OK {
		log.Fatalf("pgridquery: query failed: %s", r.Error)
	}
	fmt.Printf("kind:     %s\n", r.Kind)
	fmt.Printf("model:    %s\n", r.Model)
	fmt.Printf("value:    %g\n", r.Value)
	fmt.Printf("coverage: %d sensors\n", r.Coverage)
	fmt.Printf("energy:   %g J\n", r.EnergyJ)
	fmt.Printf("latency:  %g s\n", r.TimeSec)
	if r.Rounds > 0 {
		fmt.Printf("rounds:   %d\n", r.Rounds)
	}
	if len(r.Groups) > 0 {
		keys := make([]string, 0, len(r.Groups))
		for k := range r.Groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s: %g\n", k, r.Groups[k])
		}
	}
	if r.Cached {
		fmt.Println("cached:   true")
	}
	if st := platform.DeliveryStats(); st.Retries > 0 {
		fmt.Printf("retries:  %d\n", st.Retries)
	}
	if *trace {
		for _, id := range platform.Tracer.Traces() {
			fmt.Println()
			fmt.Print(platform.Tracer.Timeline(id))
		}
	}
}
