// Command pgridload is the city-scale load generator: it drives
// query traffic against a running pgridd fleet — or one of the built-in
// disaster scenarios — at a fixed open-loop arrival rate, measures
// latency from each request's *scheduled* send time (so a stalling
// server cannot silence its own tail — the coordinated-omission trap),
// and reports p50/p99/p999 plus the sustained-throughput ceiling as
// JSON that pgridbench -compare can gate on.
//
// Usage:
//
//	# fixed-rate run against a fleet
//	pgridload -addrs 127.0.0.1:7070,127.0.0.1:7071 -rate 50 -duration 30s \
//	    -query "SELECT avg(temp) FROM sensors" -o report.json
//
//	# step-ramp search for the sustained-throughput ceiling
//	pgridload -addrs 127.0.0.1:7070 -ramp -rate 10 -ramp-max 640
//
//	# built-in scenarios (self-contained: spin up their own platforms)
//	pgridload -scenario storm -duration 10s
//	pgridload -scenario flood -duration 10s -o flood.json
//	pgridload -scenario storm -smoke   # short run, exit 1 unless clean
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/load"
	"pervasivegrid/internal/obs"
)

func main() {
	var (
		addrs    = flag.String("addrs", "", "comma-separated pgridd addresses (fleet mode)")
		query    = flag.String("query", "SELECT avg(temp) FROM sensors", "query each request submits")
		rate     = flag.Float64("rate", 20, "offered arrival rate, req/s (ramp: starting rate)")
		duration = flag.Duration("duration", 30*time.Second, "measured span per run (ramp: per step)")
		warmup   = flag.Duration("warmup", 2*time.Second, "schedule prefix excluded from histograms")
		workers  = flag.Int("workers", 32, "sender pool size")
		ramp     = flag.Bool("ramp", false, "step-ramp search for the sustained-throughput ceiling")
		rampMax  = flag.Float64("ramp-max", 0, "ramp rate limit, req/s (default 64x -rate)")
		scenario = flag.String("scenario", "", "built-in scenario: storm | flood")
		smoke    = flag.Bool("smoke", false, "scenario smoke mode: short low-rate run, exit 1 unless clean")
		sample   = flag.Float64("trace-sample", 0.01, "client-side head-sampling rate for traces (0 disables, 1 keeps all)")
		out      = flag.String("o", "", "write the JSON report here")
	)
	flag.Parse()

	var rep *load.Report
	var err error
	switch {
	case *scenario != "":
		rep, err = runScenario(*scenario, *duration, *smoke)
	case *addrs != "":
		rep, err = runFleet(strings.Split(*addrs, ","), *query, *rate, *duration, *warmup, *workers, *ramp, *rampMax, *sample)
	default:
		fmt.Fprintln(os.Stderr, "pgridload: need -addrs (fleet mode) or -scenario storm|flood")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("pgridload: %v", err)
	}

	printReport(rep)
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			log.Fatalf("pgridload: write %s: %v", *out, err)
		}
		fmt.Printf("\nreport written to %s\n", *out)
	}
	if *smoke {
		if err := checkScenario(*scenario, rep); err != nil {
			log.Fatalf("pgridload: smoke gate: %v", err)
		}
		fmt.Println("smoke gate: PASS")
	}
}

// runScenario dispatches to a built-in scenario; smoke mode trims the
// run and lowers the offered load to what any CI box sustains.
func runScenario(name string, dur time.Duration, smoke bool) (*load.Report, error) {
	switch name {
	case "storm":
		opts := load.StormOptions{Duration: dur}
		if smoke {
			opts.Duration = 3 * time.Second
			opts.BulkRate = 150
			opts.ServiceTime = 200 * time.Microsecond
			opts.PriorityRate = 10
		}
		return load.RunStorm(opts)
	case "flood":
		opts := load.FloodOptions{Duration: dur}
		if smoke {
			opts.Duration = 4 * time.Second
			opts.QueryRate = 20
			opts.RegisterRate = 15
			opts.HeartbeatRate = 10
			opts.Blips = 1
		}
		return load.RunFlood(opts)
	default:
		return nil, fmt.Errorf("unknown scenario %q (want storm or flood)", name)
	}
}

// checkScenario applies each scenario's pass criteria.
func checkScenario(name string, rep *load.Report) error {
	switch name {
	case "storm":
		if err := load.CheckStormReport(rep, 0.99); err != nil {
			return err
		}
		// Smoke runs far below the service ceiling: nothing may shed.
		if rep.Metrics["baseShed"] != 0 {
			return fmt.Errorf("storm smoke shed %g envelopes at low rate", rep.Metrics["baseShed"])
		}
		return nil
	case "flood":
		return load.CheckFloodReport(rep, 0.95, 0.95)
	default:
		return fmt.Errorf("unknown scenario %q", name)
	}
}

// runFleet drives AskQuery round-robin across the fleet: one client
// platform per daemon (every pgridd hosts its query agent under the same
// ID, so each needs its own link). Each client platform carries a
// head-sampled tracer + wide-event log so every request gets a TraceID —
// the histogram's tail buckets then name concrete traces to go dump on
// the server (`GET /trace?id=<exemplar>`).
func runFleet(addrs []string, query string, rate float64, dur, warmup time.Duration, workers int, ramp bool, rampMax, sample float64) (*load.Report, error) {
	type fleetClient struct {
		platform *agent.Platform
		link     *agent.ReconnectLink
	}
	smp := obs.NewSampler(sample)
	clients := make([]*fleetClient, 0, len(addrs))
	for i, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		p := agent.NewPlatform(fmt.Sprintf("pgridload-%d", i))
		p.Tracer = obs.NewTracer(4096)
		p.Tracer.SetSampler(smp)
		p.Events = obs.NewEventLog(1024)
		l := agent.DialReconnect(p, a, agent.ReconnectOptions{})
		clients = append(clients, &fleetClient{platform: p, link: l})
		defer p.Close()
		defer l.Close()
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("no addresses in -addrs")
	}

	policy := agent.DefaultRetryPolicy()
	var next atomic.Uint64
	doTraced := func(int) (uint64, error) {
		c := clients[next.Add(1)%uint64(len(clients))]
		r, trace, err := core.AskQueryTraced(c.platform, query, 10*time.Second, policy)
		if err != nil {
			return trace, err
		}
		if !r.OK {
			return trace, fmt.Errorf("query failed: %s", r.Error)
		}
		return trace, nil
	}
	do := func(i int) error { _, err := doTraced(i); return err }

	target := strings.Join(addrs, ",")
	if !ramp {
		res, err := load.RunTraced(load.Options{Rate: rate, Duration: dur, Warmup: warmup, Workers: workers}, doTraced)
		if err != nil {
			return nil, err
		}
		return load.NewReport("fleet-query", target, rate, res), nil
	}

	rampRes, err := load.Ramp(load.RampOptions{
		Start:        rate,
		MaxRate:      rampMax,
		StepDuration: dur,
		StepWarmup:   warmup,
		Workers:      workers,
	}, do)
	if err != nil {
		return nil, err
	}
	// The report's flat fields describe the last sustained step; the
	// per-step table and ceiling carry the search.
	rep := &load.Report{
		Schema:   load.ReportSchema,
		Scenario: "fleet-ramp",
		Target:   target,
		RateRPS:  rate,
	}
	if n := len(rampRes.Steps); n > 0 {
		last := rampRes.Steps[n-1]
		for i := n - 1; i >= 0; i-- {
			if rampRes.Steps[i].Sustained {
				last = rampRes.Steps[i]
				break
			}
		}
		rep.Throughput = last.Achieved
		rep.Latency.P50 = float64(last.P50) / float64(time.Millisecond)
		rep.Latency.P99 = float64(last.P99) / float64(time.Millisecond)
		rep.Latency.P999 = float64(last.P999) / float64(time.Millisecond)
	}
	rep.AttachRamp(rampRes)
	return rep, nil
}

func printReport(rep *load.Report) {
	fmt.Printf("scenario:   %s\n", rep.Scenario)
	if rep.Target != "" {
		fmt.Printf("target:     %s\n", rep.Target)
	}
	if rep.Offered > 0 {
		fmt.Printf("offered:    %d req @ %g/s\n", rep.Offered, rep.RateRPS)
		fmt.Printf("completed:  %d (%.2f%% errors)\n", rep.Completed, rep.ErrorRate*100)
		fmt.Printf("throughput: %.1f req/s\n", rep.Throughput)
		fmt.Printf("latency:    p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
			rep.Latency.P50, rep.Latency.P99, rep.Latency.P999, rep.Latency.Max)
		fmt.Printf("naive p99:  %.2fms (send-time measurement — the number a closed-loop harness would report)\n",
			rep.NaiveP99Ms)
	}
	if len(rep.Exemplars) > 0 {
		fmt.Println("exemplars:  (GET /trace?id=<trace> on the target to dump the timeline)")
		for _, k := range []string{"p99", "p999", "max"} {
			if t, ok := rep.Exemplars[k]; ok {
				fmt.Printf("  %-5s trace=%s\n", k, t)
			}
		}
	}
	if len(rep.Steps) > 0 {
		fmt.Printf("\n%-10s %-10s %-9s %-10s %-10s %s\n", "rate", "achieved", "errors", "p99", "p999", "verdict")
		for _, s := range rep.Steps {
			verdict := "sustained"
			if !s.Sustained {
				verdict = "FAILED: " + s.FailReason
			}
			fmt.Printf("%-10.0f %-10.1f %-9.2f %-10v %-10v %s\n",
				s.Rate, s.Achieved, s.ErrorRate*100, s.P99.Round(time.Microsecond), s.P999.Round(time.Microsecond), verdict)
		}
		if rep.Saturated {
			fmt.Printf("ceiling:    %.0f req/s sustained\n", rep.CeilingRPS)
		} else {
			fmt.Printf("ceiling:    >= %.0f req/s (never saturated; raise -ramp-max)\n", rep.CeilingRPS)
		}
	}
	if len(rep.Metrics) > 0 {
		fmt.Println("\nscenario metrics:")
		for _, k := range sortedKeys(rep.Metrics) {
			fmt.Printf("  %-22s %g\n", k, rep.Metrics[k])
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
