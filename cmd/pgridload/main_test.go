package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/load"
	"pervasivegrid/internal/sensornet"
)

// queryServer boots a minimal pgridd: a fire-scenario runtime hosting its
// query agent on a TCP gateway. Returns the dial address.
func queryServer(t *testing.T) string {
	t.Helper()
	cfg := core.DefaultConfig()
	f := sensornet.NewTemperatureField(20)
	f.Ignite(sensornet.Hotspot{
		Center: sensornet.Position{X: 50, Y: 50},
		Peak:   500, Radius: 15, Start: -1, GrowthRate: 10,
	})
	cfg.Field = f
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.AssignRooms(2, 2)

	server := agent.NewPlatform("base-station")
	t.Cleanup(server.Close)
	if err := rt.RegisterQueryAgent(server); err != nil {
		t.Fatal(err)
	}
	gw, err := agent.ListenAndServe(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw.Addr()
}

func TestRunFleetRejectsEmptyAddrs(t *testing.T) {
	if _, err := runFleet([]string{" ", ""}, "q", 10, time.Second, 0, 4, false, 0, 0); err == nil {
		t.Fatal("want error for empty address list")
	}
}

func TestRunFleetFixedRate(t *testing.T) {
	if testing.Short() {
		t.Skip("real queries over TCP")
	}
	addr := queryServer(t)
	rep, err := runFleet([]string{addr}, "SELECT avg(temp) FROM sensors", 20,
		1500*time.Millisecond, 300*time.Millisecond, 8, false, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "fleet-query" || rep.Target != addr {
		t.Fatalf("report header = %q/%q", rep.Scenario, rep.Target)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d queries failed", rep.Errors, rep.Offered)
	}
	if rep.Latency.P99 <= 0 {
		t.Fatalf("p99 = %v, want > 0", rep.Latency.P99)
	}
	// Full client-side sampling: the report's tail percentiles must name
	// concrete TraceIDs to dump on the server.
	if rep.Exemplars["max"] == "" {
		t.Fatalf("no max exemplar in report: %v", rep.Exemplars)
	}
}

func TestRunFleetRamp(t *testing.T) {
	if testing.Short() {
		t.Skip("real queries over TCP")
	}
	addr := queryServer(t)
	// Two cheap steps (10 then 20 req/s): a single node sustains both on
	// one core, so the report carries an unsaturated ceiling.
	rep, err := runFleet([]string{addr}, "SELECT temp FROM sensors WHERE sensor = 44", 10,
		700*time.Millisecond, 100*time.Millisecond, 8, true, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "fleet-ramp" {
		t.Fatalf("scenario = %q", rep.Scenario)
	}
	if len(rep.Steps) == 0 {
		t.Fatal("ramp report has no steps")
	}
	if rep.CeilingRPS <= 0 {
		t.Fatalf("ceiling = %v", rep.CeilingRPS)
	}
	if rep.Latency.P99 <= 0 {
		t.Fatal("ramp report should carry the last sustained step's latencies")
	}
}

func TestRunScenarioDispatch(t *testing.T) {
	if _, err := runScenario("earthquake", time.Second, false); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown scenario", err)
	}
	if testing.Short() {
		t.Skip("smoke scenarios run seconds of real traffic")
	}
	rep, err := runScenario("storm", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkScenario("storm", rep); err != nil {
		t.Fatalf("storm smoke gate: %v", err)
	}
}

func TestCheckScenarioGates(t *testing.T) {
	if err := checkScenario("earthquake", &load.Report{}); err == nil {
		t.Fatal("want unknown scenario error")
	}
	// A storm that shed at smoke rates must fail even with a perfect
	// priority lane.
	shedding := &load.Report{Metrics: map[string]float64{
		"priorityDeliveryRate": 1, "priorityDeadLetters": 0, "baseShed": 3,
	}}
	if err := checkScenario("storm", shedding); err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("err = %v, want shed failure", err)
	}
	clean := &load.Report{Metrics: map[string]float64{
		"priorityDeliveryRate": 1, "priorityDeadLetters": 0, "baseShed": 0,
	}}
	if err := checkScenario("storm", clean); err != nil {
		t.Fatalf("clean storm rejected: %v", err)
	}
	// Flood dispatch: a report with no blips and full delivery passes.
	flood := &load.Report{Metrics: map[string]float64{
		"blips": 0, "queryDeliveryRate": 1, "priorityDeliveryRate": 1,
		"priorityDeadLetters": 0, "liveShelters": 5,
	}}
	if err := checkScenario("flood", flood); err != nil {
		t.Fatalf("clean flood rejected: %v", err)
	}
}

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestPrintReportFixedRate(t *testing.T) {
	rep := &load.Report{
		Scenario: "fleet-query", Target: "127.0.0.1:7070",
		RateRPS: 50, Offered: 100, Completed: 98, Errors: 2, ErrorRate: 0.02,
		Throughput: 49.1,
		Latency:    load.Percentiles{P50: 1.2, P99: 6.5, P999: 9.9, Max: 12.0},
		NaiveP99Ms: 0.9,
		Metrics:    map[string]float64{"zeta": 1, "alpha": 2},
	}
	out := capture(t, func() { printReport(rep) })
	for _, want := range []string{
		"fleet-query", "127.0.0.1:7070", "100 req @ 50/s", "p99=6.50ms",
		"naive p99:  0.90ms", "scenario metrics:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Metrics print sorted by key.
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
}

func TestPrintReportRampTable(t *testing.T) {
	saturated := &load.Report{
		Scenario:   "fleet-ramp",
		CeilingRPS: 100, Saturated: true,
		Steps: []load.StepResult{
			{Rate: 100, Achieved: 99, Sustained: true, P99: 2 * time.Millisecond, P999: 3 * time.Millisecond},
			{Rate: 200, Achieved: 120, Sustained: false, FailReason: "achieved 120/s below 90% of offered 200/s"},
		},
	}
	out := capture(t, func() { printReport(saturated) })
	for _, want := range []string{"sustained", "FAILED: achieved", "ceiling:    100 req/s sustained"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	open := &load.Report{
		Scenario:   "fleet-ramp",
		CeilingRPS: 160, Saturated: false,
		Steps: []load.StepResult{{Rate: 160, Achieved: 159, Sustained: true}},
	}
	out = capture(t, func() { printReport(open) })
	if !strings.Contains(out, "never saturated") {
		t.Fatalf("unsaturated ramp should say so:\n%s", out)
	}
}
