// Command pgridd runs a Pervasive Grid node as a network daemon: it builds
// a simulated building deployment (sensor network + wired grid), hosts the
// query agent on an agent platform, and serves envelope traffic over TCP.
// Handhelds connect with pgridquery.
//
// Usage:
//
//	pgridd -addr 127.0.0.1:7070 -rows 10 -cols 10 -fire
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/sensornet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address for agent envelopes")
	rows := flag.Int("rows", 10, "sensor grid rows")
	cols := flag.Int("cols", 10, "sensor grid columns")
	fire := flag.Bool("fire", true, "ignite a fire at the building center")
	noise := flag.Float64("noise", 0.5, "sensor measurement noise stddev")
	cacheTTL := flag.Float64("cache", 0, "result-cache TTL in virtual seconds (0 = off)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Rows, cfg.Cols = *rows, *cols
	cfg.Noise = *noise
	field := sensornet.NewTemperatureField(20)
	if *fire {
		field.Ignite(sensornet.Hotspot{
			Center: sensornet.Position{X: cfg.Net.Width / 2, Y: cfg.Net.Height / 2},
			Peak:   500, Radius: 15, Start: -1, GrowthRate: 10, Spread: 0.05,
		})
	}
	cfg.Field = field

	rt, err := core.New(cfg)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	rt.AssignRooms(2, 2)
	if err := rt.AdvertiseDefaults(); err != nil {
		log.Fatalf("pgridd: advertise: %v", err)
	}

	if *cacheTTL > 0 {
		rt.EnableCache(*cacheTTL)
	}

	platform := agent.NewPlatform("pgridd")
	defer platform.Close()
	if err := rt.RegisterQueryAgent(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	if err := rt.RegisterBrokerAgent(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	if err := rt.RegisterSolverAgents(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	gw, err := agent.ListenAndServe(platform, *addr)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	defer gw.Close()

	fmt.Printf("pgridd: %d sensors, %d grid resources, %d services advertised\n",
		len(rt.Net.Sensors), len(rt.Cluster.Resources()), rt.Broker.Reg.Len())
	fmt.Printf("pgridd: listening on %s (agents: %q, %q, solver bidders)\n",
		gw.Addr(), core.QueryAgentID, core.BrokerAgentID)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pgridd: shutting down")
}
