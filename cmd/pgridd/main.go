// Command pgridd runs a Pervasive Grid node as a network daemon: it builds
// a simulated building deployment (sensor network + wired grid), hosts the
// query agent on an agent platform, and serves envelope traffic over TCP.
// Handhelds connect with pgridquery.
//
// Usage:
//
//	pgridd -addr 127.0.0.1:7070 -rows 10 -cols 10 -fire
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/durable"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/sensornet"
	"pervasivegrid/internal/supervise"
	"pervasivegrid/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address for agent envelopes")
	name := flag.String("name", "pgridd", "node name: the platform name and the telemetry identity in the fleet view (make it unique per daemon)")
	rows := flag.Int("rows", 10, "sensor grid rows")
	cols := flag.Int("cols", 10, "sensor grid columns")
	fire := flag.Bool("fire", true, "ignite a fire at the building center")
	noise := flag.Float64("noise", 0.5, "sensor measurement noise stddev")
	cacheTTL := flag.Float64("cache", 0, "result-cache TTL in virtual seconds (0 = off)")
	faultDrop := flag.Float64("fault-drop", 0, "chaos: probability of silently dropping an inbound envelope")
	faultDup := flag.Float64("fault-dup", 0, "chaos: probability of duplicating an inbound envelope")
	faultLatency := flag.Duration("fault-latency", time.Duration(0), "chaos: added delivery latency")
	faultSeed := flag.Int64("fault-seed", 1, "chaos: fault-injection RNG seed")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /metrics.json on this address (empty = off)")
	monitorOn := flag.Bool("monitor", false, "host the fleet monitor agent: aggregate telemetry reports, serve /fleet.json + fleet-aware /healthz on -metrics-addr")
	telemetryTo := flag.String("telemetry-to", "", "report this node's telemetry to a remote monitor daemon at host:port (empty = off)")
	telemetryEvery := flag.Duration("telemetry-interval", time.Second, "telemetry report and uplink-probe period")
	healthzOn := flag.Bool("healthz", false, "serve /healthz on -metrics-addr (liveness; fleet-aware when -monitor is set)")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/* runtime profiles on -metrics-addr")
	superviseOn := flag.Bool("supervise", true, "restart crashed agents with backoff; false = an agent panic kills the daemon")
	mailboxPolicy := flag.String("mailbox-policy", "drop-newest", "overload policy for full agent mailboxes: drop-newest, drop-oldest, or block")
	mailboxCap := flag.Int("mailbox-cap", 0, "per-agent mailbox capacity (0 = default 64)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive delivery failures that open a destination's circuit (0 = default 5)")
	breakerOpenFor := flag.Duration("breaker-open-for", 0, "cool-down before an open circuit half-opens (0 = default 2s)")
	breakerHalfOpen := flag.Int("breaker-half-open", 0, "successful probes that close a half-open circuit (0 = default 2)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget for queued envelopes to drain")
	dataDir := flag.String("data-dir", "", "durable state directory: agent checkpoints, dead letters, and service registrations survive restarts via a WAL (empty = in-memory only)")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy: always (fsync per append), interval (batched), or rotate (per segment)")
	fsyncEvery := flag.Duration("fsync-interval", 50*time.Millisecond, "sync period when -fsync=interval")
	walSegment := flag.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0 = default 4MB)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate for span traces by TraceID hash (1 = keep all, 0.01 = ~1%; error/shed/breaker-open/p99-slow traces are always tail-kept)")
	recomposeOn := flag.Bool("recompose", false, "host a provider agent per advertised service and arm adaptive re-composition: breaker transitions and fleet health verdicts trigger mid-plan re-planning with live conversation migration")
	recomposeCost := flag.Duration("recompose-cost", 0, "adaptive re-composition: a step invocation slower than this fires a cost degradation signal against its service (0 = off)")
	recomposeMaxReplans := flag.Int("recompose-max-replans", 3, "adaptive re-composition: re-plans allowed per conversation (negative = never, reproducing static execution)")
	flightDump := flag.Bool("flight-dump", false, "print the flight recorder's black box from -data-dir (post-crash forensics) and exit")
	flag.Parse()

	if *flightDump {
		if *dataDir == "" {
			log.Fatalf("pgridd: -flight-dump needs -data-dir")
		}
		fr, err := durable.OpenFlight(filepath.Join(*dataDir, "flight"), durable.FlightOptions{})
		if err != nil {
			log.Fatalf("pgridd: flight open: %v", err)
		}
		fmt.Print(fr.DumpText())
		_ = fr.Close()
		return
	}

	cfg := core.DefaultConfig()
	cfg.Rows, cfg.Cols = *rows, *cols
	cfg.Noise = *noise
	field := sensornet.NewTemperatureField(20)
	if *fire {
		field.Ignite(sensornet.Hotspot{
			Center: sensornet.Position{X: cfg.Net.Width / 2, Y: cfg.Net.Height / 2},
			Peak:   500, Radius: 15, Start: -1, GrowthRate: 10, Spread: 0.05,
		})
	}
	cfg.Field = field

	rt, err := core.New(cfg)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	rt.AssignRooms(2, 2)
	if err := rt.AdvertiseDefaults(); err != nil {
		log.Fatalf("pgridd: advertise: %v", err)
	}

	if *cacheTTL > 0 {
		rt.EnableCache(*cacheTTL)
	}

	var injector *faultinject.Injector
	if *faultDrop > 0 || *faultDup > 0 || *faultLatency > 0 {
		injector = faultinject.New(faultinject.Config{
			Seed:     *faultSeed,
			DropProb: *faultDrop,
			DupProb:  *faultDup,
			Latency:  *faultLatency,
		})
		rt.DeputyWrap = injector.WrapDeputy
		fmt.Printf("pgridd: CHAOS MODE drop=%.0f%% dup=%.0f%% latency=%v seed=%d\n",
			*faultDrop*100, *faultDup*100, *faultLatency, *faultSeed)
	}

	platform := agent.NewPlatform(*name)
	defer platform.Close()

	// Self-healing runtime configuration — must precede agent
	// registration so mailboxes and supervision pick it up.
	policy, err := agent.ParseMailboxPolicy(*mailboxPolicy)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	platform.Mailbox = agent.MailboxOptions{Capacity: *mailboxCap, Policy: policy}
	platform.Breakers = supervise.NewBreakerSet(supervise.BreakerPolicy{
		FailureThreshold:  *breakerThreshold,
		OpenFor:           *breakerOpenFor,
		HalfOpenSuccesses: *breakerHalfOpen,
	})
	if *superviseOn {
		platform.OnAgentDown = func(id agent.ID, err error) {
			log.Printf("pgridd: agent %q exhausted its restart budget: %v", id, err)
		}
	} else {
		platform.Supervision = &supervise.Policy{Restart: false}
		platform.OnAgentDown = func(id agent.ID, err error) {
			log.Fatalf("pgridd: agent %q crashed (unsupervised): %v", id, err)
		}
	}

	// Durable state. With -data-dir the node recovers agent checkpoints,
	// the dead-letter ring, and live service registrations from snapshot
	// + WAL tail before any agent registers, so a kill -9 restart resumes
	// conversations instead of starting cold. A torn final record is
	// truncated, never a reason to refuse to boot.
	var store *durable.Store
	if *dataDir != "" {
		sp, err := durable.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("pgridd: %v", err)
		}
		store, err = durable.Open(*dataDir, durable.Options{
			Sync:         sp,
			SyncEvery:    *fsyncEvery,
			SegmentBytes: *walSegment,
		})
		if err != nil {
			log.Fatalf("pgridd: durable open: %v", err)
		}
		defer store.Close()
		store.AttachMetrics(rt.Metrics)
		store.AttachPlatform(platform)
		store.AttachRegistry(rt.Broker.Reg)
		fmt.Printf("pgridd: %s\n", store.Summary())
	}

	// Telemetry plane. With -monitor this daemon is the fleet aggregator:
	// it hosts the monitor agent (remote nodes report in over the same
	// envelope gateway queries use) and the probe echo responder, and its
	// own local hops feed the stitched trace ring.
	var mon *telemetry.Monitor
	if *monitorOn {
		// The monitor shares the platform's breaker set: a node the
		// fleet view marks suspect/down gets its circuit forced open,
		// and the open circuits appear in /fleet.json.
		m, err := telemetry.RegisterMonitor(platform, telemetry.MonitorOptions{
			Interval: *telemetryEvery,
			Breakers: platform.Breakers,
		})
		if err != nil {
			log.Fatalf("pgridd: monitor: %v", err)
		}
		mon = m
		platform.Tracer = mon.Tracer()
		if err := telemetry.RegisterEcho(platform, telemetry.EchoID); err != nil {
			log.Fatalf("pgridd: echo: %v", err)
		}
	}

	// Observability pipeline. Every node records spans through a
	// head-sampled tracer (the monitor's aggregate tracer stays
	// unsampled: remote spans arriving in reports already survived
	// sampling at their source) and emits one wide event per
	// conversation. With -data-dir both feed the flight recorder — a
	// WAL-journaled black box that survives kill -9 and is read back
	// with -flight-dump.
	if platform.Tracer == nil {
		platform.Tracer = obs.NewTracer(4096)
		platform.Tracer.SetSampler(obs.NewSampler(*traceSample))
	} else if *traceSample != 1 {
		log.Printf("pgridd: -trace-sample ignored with -monitor (the aggregator keeps every reported span)")
	}
	platform.Tracer.AttachMetrics(rt.Metrics)
	platform.Events = obs.NewEventLog(4096)
	platform.Events.AttachMetrics(rt.Metrics)
	var flight *durable.FlightRecorder
	if *dataDir != "" {
		flight, err = durable.OpenFlight(filepath.Join(*dataDir, "flight"), durable.FlightOptions{})
		if err != nil {
			log.Fatalf("pgridd: flight recorder: %v", err)
		}
		defer flight.Close()
		if n := len(flight.RecoveredEvents()) + len(flight.RecoveredSpans()); n > 0 {
			fmt.Printf("pgridd: flight recorder holds %d pre-restart records (-flight-dump prints them)\n", n)
		}
		flight.Hook(platform.Tracer, platform.Events)
		// After store.AttachPlatform, so the black box marks ride the
		// same crash hooks durable state uses.
		flight.AttachPlatform(platform)
	}

	if err := rt.RegisterQueryAgent(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	if err := rt.RegisterBrokerAgent(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	if err := rt.RegisterSolverAgents(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}

	// Adaptive re-composition. With -recompose every advertised service
	// gets a provider agent, and a composer stands armed over the default
	// situation-report plan: breaker transitions (delivery failures and
	// fleet-forced opens) and monitor health verdicts feed its degraded
	// set, so a mid-plan signal re-plans the rest of the conversation onto
	// substitute services instead of abandoning it.
	var composer *composition.Adaptive
	if *recomposeOn {
		n, err := rt.RegisterProviderAgents(platform)
		if err != nil {
			log.Fatalf("pgridd: providers: %v", err)
		}
		lib := composition.NewLibrary()
		for _, task := range []*composition.Task{
			{Name: "situation-report", Subtasks: []string{"survey", "solve"}},
			{Name: "survey", Concept: "TemperatureSensor",
				Outputs: []string{"TemperatureSensor"}},
			{Name: "solve", Concept: "HeatSolver",
				Inputs: []string{"TemperatureSensor"}, Outputs: []string{"HeatSolver"}},
		} {
			if err := lib.Define(task); err != nil {
				log.Fatalf("pgridd: compose library: %v", err)
			}
		}
		eng := rt.NewCompositionEngine(platform)
		// Share the platform's breaker set: a destination the delivery
		// path or the fleet monitor has quarantined is a service the
		// composer must steer around.
		eng.Breakers = platform.Breakers
		composer = &composition.Adaptive{
			Engine:        eng,
			Library:       lib,
			Goal:          "situation-report",
			Events:        platform.Events,
			Node:          *name,
			MaxReplans:    *recomposeMaxReplans,
			CostThreshold: *recomposeCost,
		}
		composer.Start()
		defer composer.Stop()
		composer.WatchBreakers(platform.Breakers)
		if mon != nil {
			cancel := mon.OnHealthChange(func(node string, from, to telemetry.Health) {
				if to != telemetry.Suspect && to != telemetry.Down {
					return
				}
				composer.Degrade(composition.Signal{
					Kind:    composition.SignalHealth,
					Service: node,
					Dead:    to == telemetry.Down,
					Detail:  fmt.Sprintf("fleet verdict %s -> %s", from, to),
				})
			})
			defer cancel()
		}
		fmt.Printf("pgridd: adaptive re-composition armed (%d provider agents, max-replans=%d, cost-threshold=%v)\n",
			n, *recomposeMaxReplans, *recomposeCost)
		// One boot-time conversation proves the loop end to end and warms
		// the proactive bindings.
		exec := composer.Run()
		fmt.Printf("pgridd: situation-report %s (steps=%d replans=%d migrations=%d)\n",
			map[bool]string{true: "composed", false: "abandoned"}[exec.Succeeded],
			len(exec.Steps), exec.Replans, exec.Migrations)
	}

	gw, err := agent.ListenAndServe(platform, *addr)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	defer gw.Close()

	// With -telemetry-to this daemon is a reporting node: it dials the
	// aggregator over a reconnecting link, ships delta-encoded snapshots
	// + spans every interval, and probes its uplink with echo
	// round-trips so the aggregator learns real transport cost.
	var rep *telemetry.Reporter
	if *telemetryTo != "" {
		link := agent.DialReconnect(platform, *telemetryTo, agent.ReconnectOptions{})
		defer link.Close()
		rep, err = telemetry.StartReporter(platform, telemetry.ReporterOptions{
			Interval: *telemetryEvery,
			Sources:  []obs.Source{rt.Metrics},
		})
		if err != nil {
			log.Fatalf("pgridd: reporter: %v", err)
		}
		defer rep.Close()
		prober := telemetry.NewProber(platform, telemetry.ProbeOptions{Interval: *telemetryEvery})
		prober.Start()
		defer prober.Close()
		fmt.Printf("pgridd: reporting telemetry to %s every %v\n", *telemetryTo, *telemetryEvery)
	} else if mon != nil {
		// The aggregator observes itself too, so the fleet view always
		// includes the monitor host.
		rep, err = telemetry.StartReporter(platform, telemetry.ReporterOptions{
			Interval: *telemetryEvery,
			Sources:  []obs.Source{rt.Metrics},
		})
		if err != nil {
			log.Fatalf("pgridd: reporter: %v", err)
		}
		defer rep.Close()
	}

	if *metricsAddr != "" {
		if injector != nil {
			injector.AttachMetrics(rt.Metrics)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("pgridd: metrics listener: %v", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		if mon != nil {
			// Fleet view: /metrics is node-labeled and merged; /healthz,
			// /fleet.json, /traces, /trace come with it.
			mux.Handle("/", telemetry.Handler(mon, platform.Metrics(), rt.Metrics))
		} else {
			mux.Handle("/", obs.Handler(platform.Metrics(), rt.Metrics))
			mux.Handle("/events.json", obs.EventsHandler(platform.Events))
			if *healthzOn {
				mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "application/json")
					fmt.Fprintln(w, `{"status":"ok"}`)
				})
			}
		}
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		}
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("pgridd: metrics server stopped: %v", err)
			}
		}()
		fmt.Printf("pgridd: metrics on http://%s/metrics (and /metrics.json)\n", ln.Addr())
		if mon != nil {
			fmt.Printf("pgridd: fleet view on http://%s/fleet.json, health on /healthz\n", ln.Addr())
		} else if *healthzOn {
			fmt.Printf("pgridd: liveness on http://%s/healthz\n", ln.Addr())
		}
		if *pprofOn {
			fmt.Printf("pgridd: profiles on http://%s/debug/pprof/\n", ln.Addr())
		}
	} else if *pprofOn || *healthzOn || mon != nil {
		log.Printf("pgridd: -monitor/-healthz/-pprof endpoints need -metrics-addr to be served")
	}

	fmt.Printf("pgridd: %d sensors, %d grid resources, %d services advertised\n",
		len(rt.Net.Sensors), len(rt.Cluster.Resources()), rt.Broker.Reg.Len())
	fmt.Printf("pgridd: listening on %s (agents: %q, %q, solver bidders)\n",
		gw.Addr(), core.QueryAgentID, core.BrokerAgentID)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	s := <-sig
	if s == syscall.SIGQUIT && flight != nil {
		// SIGQUIT is the operator's "preserve the black box" signal:
		// mark + fsync the flight WAL before the drain touches anything.
		flight.Mark("sigquit", nil)
	}

	// Graceful shutdown: stop accepting, let queued envelopes drain,
	// flush the final telemetry report, and withdraw this node's service
	// advertisements so peers re-bind instead of timing out against a
	// ghost. The deferred Closes then tear the rest down.
	fmt.Println("pgridd: signal received, draining")
	gw.Close()
	if !platform.Drain(*drainTimeout) {
		fmt.Printf("pgridd: drain timed out after %v with %d envelopes still queued\n",
			*drainTimeout, platform.QueuedEnvelopes())
	}
	if rep != nil {
		if err := rep.ReportNow(); err != nil {
			log.Printf("pgridd: final telemetry flush: %v", err)
		}
	}
	for _, p := range rt.Broker.Reg.Profiles() {
		rt.Broker.Reg.Deregister(p.Name)
	}
	if store != nil {
		// Fold the WAL into a snapshot so the next boot replays a short
		// tail instead of the whole session's journal.
		if err := store.Compact(); err != nil {
			log.Printf("pgridd: durable compact: %v", err)
		}
		fmt.Printf("pgridd: %s\n", store.Summary())
	}

	st := platform.DeliveryStats()
	fmt.Printf("pgridd: shutting down (delivered=%d dropped=%d shed=%d retries=%d dead-letters=%d",
		st.Delivered, st.Dropped, st.Shed, st.Retries, st.DeadLettered)
	if sv := platform.SupervisionStats(); sv.Panics > 0 || sv.Restarts > 0 {
		fmt.Printf(" agent-panics=%d restarts=%d give-ups=%d", sv.Panics, sv.Restarts, sv.GiveUps)
	}
	for reason, n := range st.Reasons {
		fmt.Printf(" %s=%d", reason, n)
	}
	fmt.Println(")")
	if injector != nil {
		fs := injector.Stats()
		fmt.Printf("pgridd: chaos stats seen=%d dropped=%d duplicated=%d delayed=%d\n",
			fs.Seen, fs.Dropped, fs.Duplicated, fs.Delayed)
	}
}
