// Command pgridd runs a Pervasive Grid node as a network daemon: it builds
// a simulated building deployment (sensor network + wired grid), hosts the
// query agent on an agent platform, and serves envelope traffic over TCP.
// Handhelds connect with pgridquery.
//
// Usage:
//
//	pgridd -addr 127.0.0.1:7070 -rows 10 -cols 10 -fire
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/faultinject"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/sensornet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address for agent envelopes")
	rows := flag.Int("rows", 10, "sensor grid rows")
	cols := flag.Int("cols", 10, "sensor grid columns")
	fire := flag.Bool("fire", true, "ignite a fire at the building center")
	noise := flag.Float64("noise", 0.5, "sensor measurement noise stddev")
	cacheTTL := flag.Float64("cache", 0, "result-cache TTL in virtual seconds (0 = off)")
	faultDrop := flag.Float64("fault-drop", 0, "chaos: probability of silently dropping an inbound envelope")
	faultDup := flag.Float64("fault-dup", 0, "chaos: probability of duplicating an inbound envelope")
	faultLatency := flag.Duration("fault-latency", time.Duration(0), "chaos: added delivery latency")
	faultSeed := flag.Int64("fault-seed", 1, "chaos: fault-injection RNG seed")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /metrics.json on this address (empty = off)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Rows, cfg.Cols = *rows, *cols
	cfg.Noise = *noise
	field := sensornet.NewTemperatureField(20)
	if *fire {
		field.Ignite(sensornet.Hotspot{
			Center: sensornet.Position{X: cfg.Net.Width / 2, Y: cfg.Net.Height / 2},
			Peak:   500, Radius: 15, Start: -1, GrowthRate: 10, Spread: 0.05,
		})
	}
	cfg.Field = field

	rt, err := core.New(cfg)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	rt.AssignRooms(2, 2)
	if err := rt.AdvertiseDefaults(); err != nil {
		log.Fatalf("pgridd: advertise: %v", err)
	}

	if *cacheTTL > 0 {
		rt.EnableCache(*cacheTTL)
	}

	var injector *faultinject.Injector
	if *faultDrop > 0 || *faultDup > 0 || *faultLatency > 0 {
		injector = faultinject.New(faultinject.Config{
			Seed:     *faultSeed,
			DropProb: *faultDrop,
			DupProb:  *faultDup,
			Latency:  *faultLatency,
		})
		rt.DeputyWrap = injector.WrapDeputy
		fmt.Printf("pgridd: CHAOS MODE drop=%.0f%% dup=%.0f%% latency=%v seed=%d\n",
			*faultDrop*100, *faultDup*100, *faultLatency, *faultSeed)
	}

	platform := agent.NewPlatform("pgridd")
	defer platform.Close()
	if err := rt.RegisterQueryAgent(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	if err := rt.RegisterBrokerAgent(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	if err := rt.RegisterSolverAgents(platform); err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	gw, err := agent.ListenAndServe(platform, *addr)
	if err != nil {
		log.Fatalf("pgridd: %v", err)
	}
	defer gw.Close()

	if *metricsAddr != "" {
		if injector != nil {
			injector.AttachMetrics(rt.Metrics)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("pgridd: metrics listener: %v", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, obs.Handler(platform.Metrics(), rt.Metrics)); err != nil {
				log.Printf("pgridd: metrics server stopped: %v", err)
			}
		}()
		fmt.Printf("pgridd: metrics on http://%s/metrics (and /metrics.json)\n", ln.Addr())
	}

	fmt.Printf("pgridd: %d sensors, %d grid resources, %d services advertised\n",
		len(rt.Net.Sensors), len(rt.Cluster.Resources()), rt.Broker.Reg.Len())
	fmt.Printf("pgridd: listening on %s (agents: %q, %q, solver bidders)\n",
		gw.Addr(), core.QueryAgentID, core.BrokerAgentID)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := platform.DeliveryStats()
	fmt.Printf("pgridd: shutting down (delivered=%d dropped=%d retries=%d dead-letters=%d",
		st.Delivered, st.Dropped, st.Retries, st.DeadLettered)
	for reason, n := range st.Reasons {
		fmt.Printf(" %s=%d", reason, n)
	}
	fmt.Println(")")
	if injector != nil {
		fs := injector.Stats()
		fmt.Printf("pgridd: chaos stats seen=%d dropped=%d duplicated=%d delayed=%d\n",
			fs.Seen, fs.Dropped, fs.Duplicated, fs.Delayed)
	}
}
