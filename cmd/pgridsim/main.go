// Command pgridsim runs standalone sensor-network simulations: a
// continuous aggregate query under a chosen collection strategy, printing
// one CSV row per round (energy, alive nodes, latency, value). It is the
// "Simulator for sensor network" component of the paper exposed directly,
// useful for generating the decision maker's offline training data.
//
// Usage:
//
//	pgridsim -rows 7 -cols 7 -strategy tree -rounds 200 -battery 0.02
//	pgridsim -strategy direct -loss 0.1 -agg max
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pervasivegrid/internal/sensornet"
)

func main() {
	rows := flag.Int("rows", 7, "sensor grid rows")
	cols := flag.Int("cols", 7, "sensor grid columns")
	strategy := flag.String("strategy", "tree", "collection strategy: direct|tree|cluster")
	aggName := flag.String("agg", "avg", "aggregate: sum|count|min|max|avg")
	rounds := flag.Int("rounds", 100, "collection rounds to run")
	battery := flag.Float64("battery", 0.02, "initial battery per sensor (J)")
	loss := flag.Float64("loss", 0, "per-transmission loss probability")
	noise := flag.Float64("noise", 0.5, "sensor noise stddev")
	epoch := flag.Float64("epoch", 30, "seconds between rounds (idle drain)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	agg, err := sensornet.ParseAggKind(*aggName)
	if err != nil {
		log.Fatalf("pgridsim: %v", err)
	}
	strat, err := sensornet.StrategyByName(*strategy)
	if err != nil {
		log.Fatalf("pgridsim: %v", err)
	}

	cfg := sensornet.DefaultConfig()
	cfg.InitialEnergy = *battery
	cfg.Seed = *seed
	nw := sensornet.NewGridNetwork(cfg, *rows, *cols)
	nw.SetField(sensornet.UniformField(25), *noise)
	nw.SetLossProb(*loss)

	fmt.Println("round,alive,coverage,value,energy_j,total_used_j,latency_s,messages,lost")
	for round := 1; round <= *rounds; round++ {
		res, err := strat.Collect(nw, sensornet.CollectRequest{Agg: agg, Time: float64(round) * *epoch})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgridsim: round %d: %v (network unreachable, stopping)\n", round, err)
			break
		}
		fmt.Printf("%d,%d,%d,%.4f,%.6g,%.6g,%.4f,%d,%d\n",
			round, nw.AliveCount(), res.Coverage, res.Value,
			res.EnergyJ, nw.TotalEnergyUsed(), res.Latency, res.Messages, nw.Stats().Lost)
		if nw.AliveCount() == 0 {
			break
		}
		nw.ChargeIdle(*epoch)
	}
}
