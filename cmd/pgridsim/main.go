// Command pgridsim runs standalone sensor-network simulations: a
// continuous aggregate query under a chosen collection strategy, printing
// one CSV row per round (energy, alive nodes, latency, value). It is the
// "Simulator for sensor network" component of the paper exposed directly,
// useful for generating the decision maker's offline training data.
//
// With -fleet N it instead boots a miniature telemetry-plane deployment:
// N node platforms dial a monitor agent over TCP, report delta-encoded
// metrics and traces, probe their uplinks, and the demo prints the
// fleet's merged health view each second (optionally serving it over
// HTTP, and optionally killing one node mid-run to show the
// healthy→down transition).
//
// Usage:
//
//	pgridsim -rows 7 -cols 7 -strategy tree -rounds 200 -battery 0.02
//	pgridsim -strategy direct -loss 0.1 -agg max
//	pgridsim -fleet 3 -fleet-seconds 6 -fleet-kill 3 -fleet-addr 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/sensornet"
	"pervasivegrid/internal/telemetry"
)

func main() {
	rows := flag.Int("rows", 7, "sensor grid rows")
	cols := flag.Int("cols", 7, "sensor grid columns")
	strategy := flag.String("strategy", "tree", "collection strategy: direct|tree|cluster")
	aggName := flag.String("agg", "avg", "aggregate: sum|count|min|max|avg")
	rounds := flag.Int("rounds", 100, "collection rounds to run")
	battery := flag.Float64("battery", 0.02, "initial battery per sensor (J)")
	loss := flag.Float64("loss", 0, "per-transmission loss probability")
	noise := flag.Float64("noise", 0.5, "sensor noise stddev")
	epoch := flag.Float64("epoch", 30, "seconds between rounds (idle drain)")
	seed := flag.Int64("seed", 1, "simulation seed")
	fleetN := flag.Int("fleet", 0, "run a telemetry fleet demo with this many nodes instead of the sensor simulation")
	fleetSeconds := flag.Int("fleet-seconds", 6, "fleet demo duration in seconds")
	fleetKill := flag.Int("fleet-kill", 0, "fleet demo: kill this node (1-based) halfway through (0 = none)")
	fleetAddr := flag.String("fleet-addr", "", "fleet demo: serve /metrics, /healthz, /fleet.json on this address (empty = off)")
	flag.Parse()

	if *fleetN > 0 {
		if err := runFleetDemo(*fleetN, *fleetSeconds, *fleetKill, *fleetAddr); err != nil {
			log.Fatalf("pgridsim: fleet: %v", err)
		}
		return
	}

	agg, err := sensornet.ParseAggKind(*aggName)
	if err != nil {
		log.Fatalf("pgridsim: %v", err)
	}
	strat, err := sensornet.StrategyByName(*strategy)
	if err != nil {
		log.Fatalf("pgridsim: %v", err)
	}

	cfg := sensornet.DefaultConfig()
	cfg.InitialEnergy = *battery
	cfg.Seed = *seed
	nw := sensornet.NewGridNetwork(cfg, *rows, *cols)
	nw.SetField(sensornet.UniformField(25), *noise)
	nw.SetLossProb(*loss)

	fmt.Println("round,alive,coverage,value,energy_j,total_used_j,latency_s,messages,lost")
	for round := 1; round <= *rounds; round++ {
		res, err := strat.Collect(nw, sensornet.CollectRequest{Agg: agg, Time: float64(round) * *epoch})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgridsim: round %d: %v (network unreachable, stopping)\n", round, err)
			break
		}
		fmt.Printf("%d,%d,%d,%.4f,%.6g,%.6g,%.4f,%d,%d\n",
			round, nw.AliveCount(), res.Coverage, res.Value,
			res.EnergyJ, nw.TotalEnergyUsed(), res.Latency, res.Messages, nw.Stats().Lost)
		if nw.AliveCount() == 0 {
			break
		}
		nw.ChargeIdle(*epoch)
	}
}

// runFleetDemo boots a monitor + n reporting nodes over loopback TCP and
// narrates the fleet view once per second.
func runFleetDemo(n, seconds, kill int, addr string) error {
	fleet, err := telemetry.StartFleet(telemetry.FleetConfig{
		Nodes:    n,
		Interval: 250 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fleet.Close()

	h := telemetry.Handler(fleet.Monitor)
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, h) }()
		fmt.Printf("fleet: monitor view on http://%s/fleet.json (/metrics, /healthz, /traces)\n", ln.Addr())
	}
	healthz := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code
	}

	fmt.Printf("fleet: %d nodes reporting to %s every 250ms\n", n, fleet.Gateway.Addr())
	killAt := seconds / 2
	for sec := 1; sec <= seconds; sec++ {
		for _, nd := range fleet.Nodes {
			if nd.Platform == nil {
				continue // killed
			}
			nd.Work(10)
			nd.Prober.ProbeOnce()
		}
		obs.Real.Sleep(time.Second)
		if sec == killAt && kill >= 1 && kill <= n {
			fmt.Printf("fleet: t=%ds killing node-%d (no shutdown handshake — staleness must detect it)\n", sec, kill)
			fleet.StopNode(kill - 1)
		}
		fv := fleet.Monitor.Fleet()
		fmt.Printf("fleet: t=%ds /healthz=%d worst=%s traces=%d\n", sec, healthz(), fv.Worst, fv.Traces)
		for _, nv := range fv.Nodes {
			fmt.Printf("  %-8s %-8s reports=%-4d missed=%-3d series=%-4d rtt=%.4fs drop=%.1f%% stale=%.1fs\n",
				nv.Node, nv.Health, nv.Reports, nv.Missed, nv.Series,
				nv.Observed.AvgDeliverSec, nv.Observed.DropRate*100, nv.StalenessSec)
		}
	}
	st := fleet.Platform.DeliveryStats()
	fmt.Printf("fleet: done (monitor delivered=%d dropped=%d dead-letters=%d)\n",
		st.Delivered, st.Dropped, st.DeadLettered)
	return nil
}
