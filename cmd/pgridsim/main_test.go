package main

import "testing"

// The demo is the fleet harness's only uncovered consumer shape: real
// clock, real TCP, a mid-run kill. One node for two seconds keeps it
// fast while still exercising every line of the loop.
func TestRunFleetDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet demo runs ~2s of wall clock")
	}
	if err := runFleetDemo(1, 2, 1, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
}
