// Package clean is a pgridlint CLI fixture with no violations.
package clean

import "time"

// Timeout is pure duration arithmetic — allowed everywhere.
const Timeout = 3 * time.Second

// Double is plain code no analyzer cares about.
func Double(x int) int { return 2 * x }
