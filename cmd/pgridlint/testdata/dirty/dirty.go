// Package dirty is a pgridlint CLI fixture with seeded violations:
// one rawclock hit and one goroleak hit.
package dirty

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now()
}

// Pump leaks a goroutine with no stop path.
func Pump(ch chan int) {
	go func() {
		for {
			<-ch
		}
	}()
}

// Quiet is a suppressed violation: it must NOT count as a finding.
func Quiet() {
	//lint:ignore rawclock CLI fixture demonstrates suppression end-to-end
	time.Sleep(time.Millisecond)
}
