package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pervasivegrid/internal/lint"
)

// runCLI captures one driver invocation.
func runCLI(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, dir, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, ".", "./testdata/clean")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitClean, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed findings: %q", stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := runCLI(t, ".", "./testdata/dirty")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitFindings, stderr)
	}
	if !strings.Contains(stdout, "rawclock") || !strings.Contains(stdout, "goroleak") {
		t.Fatalf("findings missing expected rules:\n%s", stdout)
	}
	// The suppressed time.Sleep in Quiet must not appear.
	if strings.Contains(stdout, "time.Sleep") {
		t.Fatalf("suppressed finding leaked into output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Fatalf("summary line missing: %q", stderr)
	}
}

func TestRulesFlagFilters(t *testing.T) {
	code, stdout, _ := runCLI(t, ".", "-rules", "goroleak", "./testdata/dirty")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	if strings.Contains(stdout, "rawclock") {
		t.Fatalf("-rules goroleak still ran rawclock:\n%s", stdout)
	}
	if !strings.Contains(stdout, "goroleak") {
		t.Fatalf("-rules goroleak produced no goroleak finding:\n%s", stdout)
	}
}

func TestUnknownRuleExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, ".", "-rules", "nosuchrule", "./testdata/dirty")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr, "unknown rule") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, ".", "-definitely-not-a-flag")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
}

func TestMissingPackageExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, ".", "./testdata/no-such-dir")
	if code != exitError {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitError, stderr)
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	// A module whose only package does not parse: load error, exit 2.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module brokenmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package broken\n\nfunc Oops( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, dir, "./...")
	if code != exitError {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitError, stderr)
	}
	if !strings.Contains(stderr, "parse") {
		t.Fatalf("stderr should mention the parse failure: %q", stderr)
	}
}

func TestListFlag(t *testing.T) {
	code, stdout, _ := runCLI(t, ".", "-list")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d", code, exitClean)
	}
	for _, rule := range []string{
		"rawclock", "rawsend", "lockeddeliver", "goroleak", "envhops", "rawspawn", "rawfsync",
		"lockorder", "blockheld", "hotalloc", "deadignore",
	} {
		if !strings.Contains(stdout, rule) {
			t.Fatalf("-list output missing %s:\n%s", rule, stdout)
		}
	}
}

func TestJSONReportShape(t *testing.T) {
	code, stdout, _ := runCLI(t, ".", "-json", "./testdata/dirty")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	var rep lint.JSONReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Schema != "pgridlint/v1" {
		t.Fatalf("schema = %q, want pgridlint/v1", rep.Schema)
	}
	if len(rep.Findings) == 0 || rep.Stats.New != len(rep.Findings) {
		t.Fatalf("stats.new = %d, findings = %d", rep.Stats.New, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Fatalf("finding missing fields: %+v", f)
		}
		if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) {
			t.Fatalf("finding file should be module-relative with forward slashes: %q", f.File)
		}
		if f.Baselined {
			t.Fatalf("no baseline given, but finding marked baselined: %+v", f)
		}
	}
	if rep.Stats.Packages != 1 || rep.Stats.Rules == 0 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
}

func TestJSONCleanRun(t *testing.T) {
	code, stdout, _ := runCLI(t, ".", "-json", "./testdata/clean")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d", code, exitClean)
	}
	var rep lint.JSONReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	// findings must be [], not null, so consumers can range unconditionally.
	if !strings.Contains(stdout, `"findings": []`) {
		t.Fatalf("clean report should carry an empty findings array:\n%s", stdout)
	}
}

// TestBaselineRoundTrip drives the burn-down workflow end to end:
// accept the dirty fixture's findings, verify the gate goes green, then
// verify a finding absent from the baseline still fails.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	code, _, stderr := runCLI(t, ".", "-write-baseline", path, "./testdata/dirty")
	if code != exitClean {
		t.Fatalf("-write-baseline exit = %d, want %d (stderr=%q)", code, exitClean, stderr)
	}
	if !strings.Contains(stderr, "accepted finding(s)") {
		t.Fatalf("write summary missing: %q", stderr)
	}

	code, stdout, stderr := runCLI(t, ".", "-baseline", path, "./testdata/dirty")
	if code != exitClean {
		t.Fatalf("baselined run exit = %d, want %d (stdout=%q)", code, exitClean, stdout)
	}
	if stdout != "" {
		t.Fatalf("baselined findings still printed: %q", stdout)
	}
	if !strings.Contains(stderr, "baselined finding(s)") {
		t.Fatalf("burn-down summary missing: %q", stderr)
	}

	// The same baseline does not excuse a different package's findings,
	// and the now-unmatched entries are reported as stale.
	code, _, stderr = runCLI(t, ".", "-baseline", path, "./testdata/clean")
	if code != exitClean {
		t.Fatalf("clean-under-foreign-baseline exit = %d (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline") {
		t.Fatalf("stale entries not reported: %q", stderr)
	}

	// Baselined findings still appear in -json, flagged, with stats.
	code, stdout, _ = runCLI(t, ".", "-json", "-baseline", path, "./testdata/dirty")
	if code != exitClean {
		t.Fatalf("-json baselined exit = %d", code)
	}
	var rep lint.JSONReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.New != 0 || rep.Stats.Baselined == 0 {
		t.Fatalf("stats = %+v, want new=0 baselined>0", rep.Stats)
	}
	for _, f := range rep.Findings {
		if !f.Baselined {
			t.Fatalf("finding not marked baselined: %+v", f)
		}
	}
}

func TestMissingBaselineExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, ".", "-baseline", filepath.Join(t.TempDir(), "nope.json"), "./testdata/clean")
	if code != exitError {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitError, stderr)
	}
}

func TestBadBaselineSchemaExitsTwo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"schema":"wrong/v9","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, ".", "-baseline", path, "./testdata/clean")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr, "schema") {
		t.Fatalf("stderr should name the schema mismatch: %q", stderr)
	}
}

func TestTimeBudget(t *testing.T) {
	// A generous budget passes and prints the wall time.
	code, _, stderr := runCLI(t, ".", "-time-budget", "5m", "./testdata/clean")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitClean, stderr)
	}
	if !strings.Contains(stderr, "budget 5m") {
		t.Fatalf("wall-time line missing: %q", stderr)
	}
	// An impossible budget fails with the infrastructure exit code.
	code, _, stderr = runCLI(t, ".", "-time-budget", "1ns", "./testdata/clean")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr, "exceeded time budget") {
		t.Fatalf("budget failure not explained: %q", stderr)
	}
}
