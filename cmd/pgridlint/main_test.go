package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI captures one driver invocation.
func runCLI(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, dir, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, ".", "./testdata/clean")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, exitClean, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed findings: %q", stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := runCLI(t, ".", "./testdata/dirty")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitFindings, stderr)
	}
	if !strings.Contains(stdout, "rawclock") || !strings.Contains(stdout, "goroleak") {
		t.Fatalf("findings missing expected rules:\n%s", stdout)
	}
	// The suppressed time.Sleep in Quiet must not appear.
	if strings.Contains(stdout, "time.Sleep") {
		t.Fatalf("suppressed finding leaked into output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Fatalf("summary line missing: %q", stderr)
	}
}

func TestRulesFlagFilters(t *testing.T) {
	code, stdout, _ := runCLI(t, ".", "-rules", "goroleak", "./testdata/dirty")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	if strings.Contains(stdout, "rawclock") {
		t.Fatalf("-rules goroleak still ran rawclock:\n%s", stdout)
	}
	if !strings.Contains(stdout, "goroleak") {
		t.Fatalf("-rules goroleak produced no goroleak finding:\n%s", stdout)
	}
}

func TestUnknownRuleExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, ".", "-rules", "nosuchrule", "./testdata/dirty")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr, "unknown rule") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, ".", "-definitely-not-a-flag")
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
}

func TestMissingPackageExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, ".", "./testdata/no-such-dir")
	if code != exitError {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitError, stderr)
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	// A module whose only package does not parse: load error, exit 2.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module brokenmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package broken\n\nfunc Oops( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, dir, "./...")
	if code != exitError {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitError, stderr)
	}
	if !strings.Contains(stderr, "parse") {
		t.Fatalf("stderr should mention the parse failure: %q", stderr)
	}
}

func TestListFlag(t *testing.T) {
	code, stdout, _ := runCLI(t, ".", "-list")
	if code != exitClean {
		t.Fatalf("exit = %d, want %d", code, exitClean)
	}
	for _, rule := range []string{"rawclock", "rawsend", "lockeddeliver", "goroleak", "envhops", "rawspawn", "rawfsync"} {
		if !strings.Contains(stdout, rule) {
			t.Fatalf("-list output missing %s:\n%s", rule, stdout)
		}
	}
}
