// Command pgridlint runs the project's invariant analyzers (see
// internal/lint and docs/static-analysis.md) over the module and
// prints findings as file:line:col: rule: message.
//
// Exit codes: 0 when clean, 1 when there are findings, 2 on a usage or
// load error — so make check can distinguish "the code is wrong" from
// "the linter could not run".
//
//	pgridlint                 # lint the whole module (./...)
//	pgridlint ./internal/...  # lint a subtree
//	pgridlint -rules rawclock,rawsend ./internal/agent
//	pgridlint -list           # describe the analyzers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pervasivegrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// Exit codes.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

// run is the testable driver: args are the command-line arguments
// (without argv[0]), dir anchors relative patterns and the module
// lookup.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pgridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pgridlint [-list] [-rules r1,r2] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *rules != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "pgridlint: unknown rule %q (try -list)\n", name)
				return exitError
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "pgridlint: %v\n", err)
		return exitError
	}
	abs, err := absDir(dir)
	if err != nil {
		fmt.Fprintf(stderr, "pgridlint: %v\n", err)
		return exitError
	}
	pkgs, err := loader.LoadPatterns(abs, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pgridlint: %v\n", err)
		return exitError
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pgridlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitClean
}

func absDir(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	return filepath.Abs(dir)
}
