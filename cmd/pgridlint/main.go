// Command pgridlint runs the project's invariant analyzers (see
// internal/lint and docs/static-analysis.md) over the module and
// prints findings as file:line:col: rule: message.
//
// Exit codes: 0 when clean, 1 when there are new findings, 2 on a
// usage or load error — or when -time-budget is exceeded — so make
// check can distinguish "the code is wrong" from "the linter could not
// run (or got too slow)".
//
//	pgridlint                 # lint the whole module (./...)
//	pgridlint ./internal/...  # lint a subtree
//	pgridlint -rules rawclock,rawsend ./internal/agent
//	pgridlint -json           # machine-readable report (schema pgridlint/v1)
//	pgridlint -baseline lint-baseline.json          # only NEW findings fail
//	pgridlint -write-baseline lint-baseline.json    # accept current findings
//	pgridlint -time-budget 90s                      # fail if the run is slower
//	pgridlint -list           # describe the analyzers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pervasivegrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// Exit codes.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

// run is the testable driver: args are the command-line arguments
// (without argv[0]), dir anchors relative patterns and the module
// lookup.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pgridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report (schema pgridlint/v1)")
	baselinePath := fs.String("baseline", "", "findings baseline file; only findings NOT in it fail the run")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	timeBudget := fs.Duration("time-budget", 0, "fail (exit 2) if the whole run exceeds this wall time; also prints the elapsed time")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pgridlint [-list] [-rules r1,r2] [-json] [-baseline file] [-write-baseline file] [-time-budget d] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *rules != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "pgridlint: unknown rule %q (try -list)\n", name)
				return exitError
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	//lint:ignore rawclock the linter times its own wall clock for -time-budget; no FakeClock test drives this binary
	start := time.Now()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "pgridlint: %v\n", err)
		return exitError
	}
	abs, err := absDir(dir)
	if err != nil {
		fmt.Fprintf(stderr, "pgridlint: %v\n", err)
		return exitError
	}
	pkgs, err := loader.LoadPatterns(abs, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pgridlint: %v\n", err)
		return exitError
	}

	diags := lint.Run(pkgs, analyzers)
	//lint:ignore rawclock see the time.Now above — real wall time is the point of -time-budget
	elapsed := time.Since(start)

	if *writeBaseline != "" {
		b := lint.NewBaseline(loader.ModuleRoot, diags)
		if err := lint.WriteBaseline(*writeBaseline, b); err != nil {
			fmt.Fprintf(stderr, "pgridlint: %v\n", err)
			return exitError
		}
		fmt.Fprintf(stderr, "pgridlint: wrote %s with %d accepted finding(s)\n", *writeBaseline, len(b.Findings))
		return exitClean
	}

	fresh, accepted := diags, []lint.Diagnostic(nil)
	stale := 0
	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "pgridlint: %v\n", err)
			return exitError
		}
		fresh, accepted, stale = lint.ApplyBaseline(loader.ModuleRoot, b, diags)
	}

	if *asJSON {
		rep := lint.NewJSONReport(loader.ModuleRoot, fresh, accepted, len(pkgs), len(analyzers), stale, elapsed.Milliseconds())
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "pgridlint: %v\n", err)
			return exitError
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(accepted) > 0 || stale > 0 {
		fmt.Fprintf(stderr, "pgridlint: %d baselined finding(s), %d stale baseline entr(ies) — regenerate with make lint-baseline\n", len(accepted), stale)
	}
	if *timeBudget != 0 {
		fmt.Fprintf(stderr, "pgridlint: %d package(s), %d rule(s) in %s (budget %s)\n", len(pkgs), len(analyzers), elapsed.Round(time.Millisecond), *timeBudget)
		if elapsed > *timeBudget {
			fmt.Fprintf(stderr, "pgridlint: run exceeded time budget — the fixed-point engine is regressing\n")
			return exitError
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "pgridlint: %d finding(s) in %d package(s)\n", len(fresh), len(pkgs))
		return exitFindings
	}
	return exitClean
}

func absDir(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	return filepath.Abs(dir)
}
