package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeCapture fakes a test2json bench capture: one event per line, the
// result line split across two Output events the way test2json does.
func writeCapture(t *testing.T, name string, results map[string]float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, `{"Action":"output","Package":"p","Output":"goos: linux\n"}`)
	for bench, ns := range results {
		fmt.Fprintf(f, `{"Action":"output","Package":"p","Output":"%s-8   "}`+"\n", bench)
		fmt.Fprintf(f, `{"Action":"output","Package":"p","Output":"\t 100\t %.0f ns/op\n"}`+"\n", ns)
	}
	fmt.Fprintln(f, "not json at all")
	return path
}

func TestReadBenchKeepsMinimumSample(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	content := `{"Action":"output","Output":"BenchmarkPlatformDeliver-8 \t 100\t 2000 ns/op\n"}
{"Action":"output","Output":"BenchmarkPlatformDeliver-8 \t 100\t 1500 ns/op\n"}
{"Action":"output","Output":"BenchmarkPlatformDeliver-8 \t 100\t 1800 ns/op\n"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := readBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if res["BenchmarkPlatformDeliver"] != 1500 {
		t.Fatalf("best-of-3 = %v, want 1500", res["BenchmarkPlatformDeliver"])
	}
}

func TestReadBenchRejectsEmptyCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"Action":"output","Output":"PASS\n"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBench(path); err == nil {
		t.Fatal("capture without benchmarks must error")
	}
}

func TestCompareBenchVerdicts(t *testing.T) {
	oldPath := writeCapture(t, "old.json", map[string]float64{
		"BenchmarkPlatformDeliver": 1000,
		"BenchmarkEnvelopeCodec":   5000,
	})
	cases := []struct {
		name    string
		newRes  map[string]float64
		wantErr bool
	}{
		{"within threshold", map[string]float64{"BenchmarkPlatformDeliver": 1100}, false},
		{"regression", map[string]float64{"BenchmarkPlatformDeliver": 1500}, true},
		{"ungated regression ignored", map[string]float64{
			"BenchmarkPlatformDeliver": 900, "BenchmarkEnvelopeCodec": 50000}, false},
		{"new benchmark tolerated", map[string]float64{
			"BenchmarkPlatformDeliver": 900, "BenchmarkRouteNew": 10}, false},
		{"no gated overlap", map[string]float64{"BenchmarkEnvelopeCodec": 5000}, true},
	}
	for _, c := range cases {
		newPath := writeCapture(t, "new.json", c.newRes)
		err := compareBench(oldPath, newPath, "Deliver|Route", 0.20, 0.10)
		if (err != nil) != c.wantErr {
			t.Fatalf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
	if err := compareBench(oldPath, oldPath, "(", 0.20, 0.10); err == nil {
		t.Fatal("bad gate regexp must error")
	}
	if err := compareBench(filepath.Join(t.TempDir(), "nope.json"), oldPath, ".", 0.20, 0.10); err == nil {
		t.Fatal("missing capture must error")
	}
}

// TestCompareBenchOverheadGate exercises the instrumented-vs-blackout
// budget: the new capture carries the Sampled/SamplerOff pair and fails
// only when sampling costs more than the budget over the baseline.
func TestCompareBenchOverheadGate(t *testing.T) {
	oldPath := writeCapture(t, "old.json", map[string]float64{
		"BenchmarkPlatformDeliver": 1000,
	})
	cases := []struct {
		name    string
		newRes  map[string]float64
		wantErr bool
	}{
		{"within budget", map[string]float64{
			"BenchmarkPlatformDeliver":           1000,
			"BenchmarkPlatformDeliverSampled":    1080,
			"BenchmarkPlatformDeliverSamplerOff": 1000}, false},
		{"over budget", map[string]float64{
			"BenchmarkPlatformDeliver":           1000,
			"BenchmarkPlatformDeliverSampled":    1200,
			"BenchmarkPlatformDeliverSamplerOff": 1000}, true},
		{"pair absent: not gated", map[string]float64{
			"BenchmarkPlatformDeliver": 1000}, false},
		{"half the pair: not gated", map[string]float64{
			"BenchmarkPlatformDeliver":        1000,
			"BenchmarkPlatformDeliverSampled": 9000}, false},
	}
	for _, c := range cases {
		newPath := writeCapture(t, "new.json", c.newRes)
		err := compareBench(oldPath, newPath, "Deliver|Route", 10, 0.10)
		if (err != nil) != c.wantErr {
			t.Fatalf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}
