// Command pgridbench regenerates the reproduction suite's tables (E1–E10
// in DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	pgridbench                 # run every experiment
//	pgridbench -only E1,E6     # run a subset
//	pgridbench -o results.txt  # also write the tables to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pervasivegrid/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	out := flag.String("o", "", "also write results to this file")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgridbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	failed := false
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		t, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgridbench: %s: %v\n", r.ID, err)
			failed = true
			continue
		}
		t.Fprint(w)
	}
	if failed {
		os.Exit(1)
	}
}
