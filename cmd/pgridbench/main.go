// Command pgridbench regenerates the reproduction suite's tables (E1–E18
// in DESIGN.md / EXPERIMENTS.md) and compares benchmark runs.
//
// Usage:
//
//	pgridbench                 # run every experiment
//	pgridbench -only E1,E6     # run a subset
//	pgridbench -o results.txt  # also write the tables to a file
//	pgridbench -compare BENCH_obs.json BENCH_new.json
//	                           # diff two `go test -bench -json` captures;
//	                           # exits 1 on >20% ns/op regression of the
//	                           # Deliver/Route benchmarks (make benchcmp).
//	                           # When the new capture holds the
//	                           # instrumented-vs-blackout Deliver pair
//	                           # (PlatformDeliverSampled / ...SamplerOff)
//	                           # it additionally gates the observability
//	                           # pipeline's own cost: exits 1 when 1%
//	                           # sampling costs more than -overhead-budget
//	                           # (10%) over the sampler-off baseline
//	pgridbench -compare old-load.json new-load.json
//	                           # when both files are pgridload reports
//	                           # (schema pgridload/v1), gate on tail
//	                           # latency instead: exits 1 when p99/p999
//	                           # grow >25% or the throughput ceiling
//	                           # drops >20%
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"pervasivegrid/internal/experiments"
	"pervasivegrid/internal/load"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	out := flag.String("o", "", "also write results to this file")
	compare := flag.Bool("compare", false, "compare two bench captures: pgridbench -compare old.json new.json")
	benchMatch := flag.String("bench-match", "Deliver|Route|WAL|Replan", "regexp selecting which benchmarks -compare gates on")
	benchThreshold := flag.Float64("bench-threshold", 0.20, "-compare fails when a gated benchmark's ns/op grows by more than this fraction")
	overheadBudget := flag.Float64("overhead-budget", 0.10, "-compare fails when the instrumented Deliver path (PlatformDeliverSampled) costs more than this fraction over the sampler-off blackout baseline")
	p99Threshold := flag.Float64("p99-threshold", 0.25, "-compare on pgridload reports fails when p99/p999 grows by more than this fraction")
	ceilingThreshold := flag.Float64("ceiling-threshold", 0.20, "-compare on pgridload reports fails when throughput/ceiling drops by more than this fraction")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "pgridbench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		// Two pgridload reports gate on tail latency; anything else is
		// treated as a test2json bench capture and gates on ns/op.
		if load.IsReport(flag.Arg(0)) && load.IsReport(flag.Arg(1)) {
			if err := compareLoad(flag.Arg(0), flag.Arg(1), *p99Threshold, *ceilingThreshold); err != nil {
				fmt.Fprintf(os.Stderr, "pgridbench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := compareBench(flag.Arg(0), flag.Arg(1), *benchMatch, *benchThreshold, *overheadBudget); err != nil {
			fmt.Fprintf(os.Stderr, "pgridbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgridbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	failed := false
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		t, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgridbench: %s: %v\n", r.ID, err)
			failed = true
			continue
		}
		t.Fprint(w)
	}
	if failed {
		os.Exit(1)
	}
}

// benchResultRe matches a Go benchmark result line (the -N CPU suffix is
// stripped so captures taken with different GOMAXPROCS still line up).
var benchResultRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// readBench extracts name → ns/op from a `go test -bench -json`
// (test2json) capture. Repeated samples (-count=N) keep the minimum:
// best-of-N is robust against scheduler noise, which single samples of
// microsecond-scale benchmarks are not.
func readBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Reassemble the raw test output stream, then scan it for result
	// lines: test2json may split a single benchmark line across events.
	var raw strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate trailing garbage in hand-edited captures
		}
		if ev.Action == "output" {
			raw.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	res := map[string]float64{}
	for _, line := range strings.Split(raw.String(), "\n") {
		m := benchResultRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := res[m[1]]; !ok || v < prev {
			res[m[1]] = v
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return res, nil
}

// compareLoad diffs two pgridload reports and gates on tail latency and
// the sustained-throughput ceiling.
func compareLoad(oldPath, newPath string, p99Threshold, ceilingThreshold float64) error {
	oldRep, err := load.ReadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load.ReadReport(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("load report compare: %s (%s) -> %s (%s)\n",
		oldPath, oldRep.Scenario, newPath, newRep.Scenario)
	table, err := load.CompareReports(oldRep, newRep, p99Threshold, ceilingThreshold)
	fmt.Print(table)
	return err
}

// compareBench diffs two captures and fails on regressions of the gated
// benchmarks beyond the threshold. The gate is deliberately coarse — it
// catches structural mistakes (an O(n) scan on the deliver path), not
// single-digit drift; `make bench` records the gated set best-of-3 at a
// fixed iteration count so the compared numbers are stable.
func compareBench(oldPath, newPath, match string, threshold, overheadBudget float64) error {
	gate, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("-bench-match: %w", err)
	}
	oldRes, err := readBench(oldPath)
	if err != nil {
		return err
	}
	newRes, err := readBench(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	gated, regressed := 0, 0
	for _, name := range names {
		oldV, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-40s %14s %14.0f %8s\n", name, "-", newRes[name], "new")
			continue
		}
		delta := newRes[name]/oldV - 1
		mark := ""
		if gate.MatchString(name) {
			gated++
			if delta > threshold {
				regressed++
				mark = "  REGRESSION"
			}
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%%%s\n", name, oldV, newRes[name], delta*100, mark)
	}
	if gated == 0 {
		return fmt.Errorf("no benchmark matching %q present in both captures", match)
	}
	if regressed > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed beyond %.0f%%", regressed, threshold*100)
	}
	fmt.Printf("ok: %d gated benchmark(s) within %.0f%% of baseline\n", gated, threshold*100)
	return checkOverhead(newRes, overheadBudget)
}

// The instrumented-vs-blackout Deliver pair: Sampled runs the full
// observability pipeline at 1% head sampling, SamplerOff runs the same
// wiring in complete blackout — their ratio is the pipeline's own cost.
const (
	benchSampled    = "BenchmarkPlatformDeliverSampled"
	benchSamplerOff = "BenchmarkPlatformDeliverSamplerOff"
)

// checkOverhead gates the observability pipeline's cost within a single
// capture: 1% sampling may not cost more than budget over the blackout
// baseline. Captures that don't carry the pair (older baselines) are not
// gated — the check only ever tightens a run that opted in by recording
// both benchmarks.
func checkOverhead(res map[string]float64, budget float64) error {
	sampled, okS := res[benchSampled]
	off, okO := res[benchSamplerOff]
	if !okS || !okO || off <= 0 {
		return nil
	}
	overhead := sampled/off - 1
	verdict := "ok"
	if overhead > budget {
		verdict = "REGRESSION"
	}
	fmt.Printf("sampling overhead: %.0f ns/op instrumented vs %.0f ns/op blackout = %+.1f%% (budget %.0f%%) %s\n",
		sampled, off, overhead*100, budget*100, verdict)
	if overhead > budget {
		return fmt.Errorf("observability overhead %.1f%% exceeds the %.0f%% budget", overhead*100, budget*100)
	}
	return nil
}
