// Floodevac is the partition-tolerance end-to-end scenario as a
// narrative: a river floods a district, handheld devices guide evacuees
// to shelters, and the network between them and the base station keeps
// failing. Shelter advertisements live under 2-second leases (a flooded
// shelter that stops renewing genuinely vanishes from route answers),
// route queries ride the retry layer, heartbeats ride the priority
// lane, and the handhelds' reconnecting links buffer and replay through
// every outage.
//
// The link is severed for real — a TCP proxy drops every connection
// mid-run — and the claim on trial is that the robustness substrate
// turns those outages into latency, not lost evacuees. Run with `make
// example-floodevac` or `go run ./examples/floodevac`.
package main

import (
	"fmt"
	"log"
	"time"

	"pervasivegrid/internal/load"
)

func main() {
	fmt.Println("== Flood evacuation: shelters on 2s leases across a dying link ==")
	fmt.Println()

	rep, err := load.RunFlood(load.FloodOptions{
		Duration:      10 * time.Second,
		Shelters:      10,
		LeaseTTL:      2 * time.Second,
		RegisterRate:  20,
		QueryRate:     60,
		HeartbeatRate: 20,
		Blips:         3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link outages forced:      %.0f (severing %.0f connections)\n",
		rep.Metrics["blips"], rep.Metrics["linkDrops"])
	fmt.Printf("reconnects:               %.0f, replaying %.0f buffered envelopes\n",
		rep.Metrics["reconnects"], rep.Metrics["replayed"])
	fmt.Printf("route queries delivered:  %.1f%% (%0.f of %d), p50=%.1fms p99=%.1fms\n",
		rep.Metrics["queryDeliveryRate"]*100, rep.Metrics["queriesOK"], rep.Offered,
		rep.Latency.P50, rep.Latency.P99)
	fmt.Printf("lease renewals delivered: %.1f%%\n", rep.Metrics["renewalDeliveryRate"]*100)
	fmt.Printf("heartbeats delivered:     %.1f%% (priority lane, %g dead letters)\n",
		rep.Metrics["priorityDeliveryRate"]*100, rep.Metrics["priorityDeadLetters"])
	fmt.Printf("shelters still live:      %.0f of 10\n", rep.Metrics["liveShelters"])

	if err := load.CheckFloodReport(rep, 0.95, 0.95); err != nil {
		log.Fatalf("floodevac: %v", err)
	}
	fmt.Println()
	fmt.Println("Every outage became latency: queries retried through, the")
	fmt.Println("reconnect layer replayed what it buffered, and lease churn")
	fmt.Println("kept the shelter registry honest the whole time.")
}
