// Healthmonitor reproduces the paper's first motivating scenario: a real
// time environment that "monitors the health effects of environmental
// toxins ... on humans" by mining disparate data streams — environmental
// toxin sensors, mobile-lab reports, and hospital admissions — without
// centralising the raw data. Each site mines decision trees over its own
// stream and ships only truncated Fourier spectra; the combined ensemble
// flags emergent correlations ("sensors detect particular toxins ...
// hospitals show people being admitted with unexplained symptoms").
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/ml"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/stream"
)

// Feature layout for a monitored case record (all binary):
//
//	0: toxin sensor reading high near patient's area
//	1: patient ate seafood recently
//	2: patient reports upset stomach
//	3: dead birds reported in the area
//	4: patient is elderly
//	5: viral fever symptoms
//	6: worked near a flagged contaminated site
//	7: unexplained symptoms
//
// Ground truth: a health event worth an expert alert.
const dim = 8

func groundTruth(x []float64) int {
	// Pfiesteria-style: toxin + seafood + stomach.
	if x[0] >= 0.5 && x[1] >= 0.5 && x[2] >= 0.5 {
		return 1
	}
	// West-Nile-style: dead birds + elderly + fever.
	if x[3] >= 0.5 && x[4] >= 0.5 && x[5] >= 0.5 {
		return 1
	}
	// Low-grade attack: contaminated site + unexplained symptoms.
	if x[6] >= 0.5 && x[7] >= 0.5 {
		return 1
	}
	return 0
}

func synthBlock(rng *rand.Rand, n int, noise float64) ml.Dataset {
	var ds ml.Dataset
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for b := range x {
			if rng.Float64() < 0.35 {
				x[b] = 1
			}
		}
		y := groundTruth(x)
		if rng.Float64() < noise {
			y = 1 - y
		}
		ds.Add(x, y)
	}
	return ds
}

func main() {
	fmt.Println("=== Pervasive health monitoring: mining disparate data streams ===")
	fmt.Println()

	// 1. The analysis task decomposes exactly as the paper describes.
	lib := composition.StreamMiningLibrary()
	plan, err := lib.Plan("mine-stream")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("[planner] mine-stream decomposes into:")
	for i, s := range plan {
		fmt.Printf("  %d. %-16s (needs a %s)\n", i+1, s.Task.Name, s.Task.Concept)
	}
	fmt.Println()

	// 2. Discover the analysis services the monitoring agencies run.
	o := ontology.Pervasive()
	broker := discovery.NewBroker("cdc-broker", discovery.NewSemanticMatcher(o))
	for _, p := range []*ontology.Profile{
		{Name: "umbc-treeminer", Concept: "DecisionTreeService"},
		{Name: "epa-spectra", Concept: "FourierSpectrumService"},
		{Name: "cdc-analytics", Concept: "DataMiningService"},
	} {
		if _, err := broker.Reg.Register(p, discoveryTTL); err != nil {
			log.Fatal(err)
		}
	}
	engine := &composition.Engine{
		Brokers: []*discovery.Broker{broker}, Onto: o,
		Invoke: func(p *ontology.Profile, s composition.Step) error { return nil },
	}
	exec := engine.Execute(plan)
	fmt.Printf("[composition] pipeline bound and executed: succeeded=%v, bindings:\n", exec.Succeeded)
	for _, s := range exec.Steps {
		fmt.Printf("  %-16s -> %s\n", s.Task, s.Service)
	}
	fmt.Println()

	// 3. The actual distributed mining: 6 sites (sensor fields, mobile
	// labs, hospitals), each training on its local stream, shipping
	// truncated spectra only.
	rng := rand.New(rand.NewSource(7))
	miner, err := stream.NewEnsembleMiner(dim, 32)
	if err != nil {
		log.Fatal(err)
	}
	sites := []string{
		"chesapeake-toxin-field", "baltimore-mobile-lab-1", "baltimore-mobile-lab-2",
		"hopkins-admissions", "umms-admissions", "county-health-dept",
	}
	rawBytes := 0
	for _, site := range sites {
		block := synthBlock(rng, 600, 0.03)
		sent, err := miner.AddBlock(block)
		if err != nil {
			log.Fatal(err)
		}
		rawBytes += block.Len() * (dim + 1)
		fmt.Printf("[site %-24s] mined %d records, shipped %d-byte spectrum\n", site, block.Len(), sent)
	}
	fmt.Printf("[uplink] total shipped: %d bytes (raw data would be %d bytes, %.0fx more)\n\n",
		miner.WireBytes(), rawBytes, float64(rawBytes)/float64(miner.WireBytes()))

	// 4. The combined classifier screens incoming live cases.
	fmt.Println("[screening] live case stream through the combined ensemble:")
	cases := []struct {
		desc string
		x    []float64
	}{
		{"toxin hit + seafood + upset stomach", []float64{1, 1, 1, 0, 0, 0, 0, 0}},
		{"dead birds + elderly + fever", []float64{0, 0, 0, 1, 1, 1, 0, 0}},
		{"contaminated site + unexplained symptoms", []float64{0, 0, 0, 0, 0, 0, 1, 1}},
		{"seafood + stomach but no toxin signal", []float64{0, 1, 1, 0, 0, 0, 0, 0}},
		{"healthy baseline", []float64{0, 0, 0, 0, 0, 0, 0, 0}},
	}
	correct := 0
	for _, c := range cases {
		got, err := miner.Classify(c.x)
		if err != nil {
			log.Fatal(err)
		}
		want := groundTruth(c.x)
		verdict := "ok"
		if got == 1 {
			verdict = "ALERT"
		}
		mark := " "
		if got == want {
			correct++
			mark = "+"
		}
		fmt.Printf("  [%s] %-42s -> %-5s (expected %d)\n", mark, c.desc, verdict, want)
	}
	fmt.Printf("\n%d/%d screening cases correct; the proactive environment the paper asks for, without raw-data centralisation.\n",
		correct, len(cases))

	// 5. A sliding window keeps per-site alert-rate statistics.
	win, err := stream.NewSlidingStats(50)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		x := make([]float64, dim)
		for b := range x {
			if rng.Float64() < 0.35 {
				x[b] = 1
			}
		}
		got, _ := miner.Classify(x)
		win.Push(float64(got))
	}
	p := win.Snapshot()
	fmt.Printf("[window] alert rate over last %d screened cases: %.1f%%\n", int(p.Count), 100*p.Sum/p.Count)
}

const discoveryTTL = 3600e9 // 1h in nanoseconds (time.Duration)
