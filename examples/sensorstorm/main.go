// Sensorstorm is the overload end-to-end scenario as a narrative: a
// city-wide heat emergency makes thousands of sensors report at once,
// flooding a single base station whose mailbox holds a few dozen
// envelopes. The platform's two-lane mailbox design is the safety
// property on trial — bulk readings shed under the DropOldest policy
// (fresh data beats stale), while operator control pings on the
// priority lane keep flowing with a flat tail.
//
// The scenario runs three times at rising storm intensity to trace the
// overload curve: under the service ceiling nothing sheds; past it the
// base station sheds exactly the excess while the control plane never
// notices. Run with `make example-sensorstorm` or `go run
// ./examples/sensorstorm`.
package main

import (
	"fmt"
	"log"
	"time"

	"pervasivegrid/internal/load"
)

func main() {
	fmt.Println("== Sensor storm: heat emergency, one base station ==")
	fmt.Println()
	fmt.Println("The sink services ~400 readings/s (2.5ms each); its normal")
	fmt.Println("mailbox lane holds 32 envelopes under DropOldest.")
	fmt.Println()

	for _, storm := range []struct {
		label string
		rate  float64
	}{
		{"calm        (0.5x ceiling)", 200},
		{"storm       (2x ceiling)", 800},
		{"superstorm  (4x ceiling)", 1600},
	} {
		rep, err := load.RunStorm(load.StormOptions{
			Duration:     5 * time.Second,
			BulkRate:     storm.rate,
			ServiceTime:  2500 * time.Microsecond,
			PriorityRate: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := load.CheckStormReport(rep, 0.99); err != nil {
			log.Fatalf("%s: priority lane failed: %v", storm.label, err)
		}
		fmt.Printf("%s  bulk %4.0f/s: delivered=%5.0f shed=%5.0f | control: %3.0f%% delivered, p99=%.1fms\n",
			storm.label, storm.rate,
			rep.Metrics["baseDelivered"], rep.Metrics["baseShed"],
			rep.Metrics["priorityDeliveryRate"]*100, rep.Latency.P99)
	}

	fmt.Println()
	fmt.Println("Past the ceiling the base station sheds stale bulk readings,")
	fmt.Println("but every control ping rode the priority lane to delivery.")
}
