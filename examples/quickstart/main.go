// Quickstart: build a pervasive grid, submit the paper's four query types,
// and print what the runtime decided and measured.
package main

import (
	"fmt"
	"log"

	"pervasivegrid/internal/core"
	"pervasivegrid/internal/sensornet"
)

func main() {
	// A 10x10 temperature-sensor deployment in a 100 m building with a
	// fire burning at the center; the wired grid hangs off the base
	// station.
	cfg := core.DefaultConfig()
	field := sensornet.NewTemperatureField(20)
	field.Ignite(sensornet.Hotspot{
		Center: sensornet.Position{X: 50, Y: 50},
		Peak:   500, Radius: 15, Start: -1, GrowthRate: 10,
	})
	cfg.Field = field

	rt, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt.AssignRooms(2, 2) // rooms r0..r3, one per quadrant

	queries := []string{
		"SELECT temp FROM sensors WHERE sensor = 44",
		"SELECT avg(temp) FROM sensors WHERE room = 'r0'",
		"SELECT tempdist(temp) FROM sensors",
		"SELECT max(temp) FROM sensors EPOCH DURATION 10",
	}
	for _, src := range queries {
		res, err := rt.Submit(src)
		if err != nil {
			log.Fatalf("%s: %v", src, err)
		}
		fmt.Printf("%s\n", src)
		fmt.Printf("  kind=%s model=%s value=%.2f coverage=%d energy=%.3gJ latency=%.3gs\n\n",
			res.Kind, res.Model, res.Value, res.Coverage, res.EnergyJ, res.TimeSec)
	}
}
