// Firefighting reproduces the paper's Figure 1 scenario as a narrative:
// a building is on fire; fire fighters arrive with handheld devices and
// query the in-building sensor network through the base station, which
// dynamically partitions each query between the sensors, itself, and the
// wired grid.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/core"
	"pervasivegrid/internal/ontology"
	"pervasivegrid/internal/sensornet"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Rows, cfg.Cols = 12, 12
	cfg.Noise = 1.0
	field := sensornet.NewTemperatureField(20)
	// The fire starts in the north-east quadrant and spreads.
	field.Ignite(sensornet.Hotspot{
		Center: sensornet.Position{X: 70, Y: 70},
		Peak:   600, Radius: 12, Start: -30, GrowthRate: 0.2, Spread: 0.1,
	})
	cfg.Field = field

	rt, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt.AssignRooms(3, 3) // rooms r0..r8
	if err := rt.AdvertiseDefaults(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 1: fire fighters query the burning building ===")
	fmt.Println()

	// 1. The crew discovers the sensors nearest the reported fire.
	fmt.Println("[discovery] temperature sensors within 20 m of the reported hotspot (70,70):")
	matches := rt.Discover(ontology.Request{
		Concept: "TemperatureSensor",
		X:       70, Y: 70, HasLoc: true,
		Constraints: []ontology.Constraint{{Op: ontology.OpNear, Value: ontology.Num(20)}},
	})
	for i, m := range matches {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(matches)-5)
			break
		}
		x, _ := m.Profile.Prop("x")
		y, _ := m.Profile.Prop("y")
		fmt.Printf("  %-12s at (%s,%s) score=%.2f\n", m.Profile.Name, x, y, m.Score)
	}
	fmt.Println()

	// 2. Simple probe: is the stairwell passable?
	run(rt, "simple probe near the stairwell", "SELECT temp FROM sensors WHERE sensor = 13")

	// 3. Aggregate: how hot is the fire room on average?
	run(rt, "average temperature in room r8 (NE quadrant)", "SELECT avg(temp) FROM sensors WHERE room = 'r8'")

	// 4. Which rooms are dangerous right now?
	run(rt, "how many sensors read above 100 degrees", "SELECT count(temp) FROM sensors WHERE temp > 100")

	// 5. Complex: full temperature distribution — solved on the grid.
	res, err := rt.Submit("SELECT tempdist(temp) FROM sensors")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[complex] temperature distribution: model=%s peak=%.0f°C solve: %d iters, residual %.2g\n",
		res.Model, res.Value, res.Solve.Iterations, res.Solve.Residual)
	fmt.Println(heatmap(res))

	// 6. Forecast: where will it be hot in five minutes? The transient
	// heat equation integrates the reconstructed field forward.
	res, err = rt.Submit("SELECT forecast(temp) FROM sensors")
	if err != nil {
		log.Fatal(err)
	}
	horizon := rt.Cfg.Forecast.Horizon
	if horizon == 0 {
		horizon = 300 // the runtime default
	}
	fmt.Printf("[forecast] predicted field %.0fs ahead: model=%s peak=%.0f°C (%d time steps)\n",
		horizon, res.Model, res.Value, res.Solve.Iterations)
	fmt.Println(heatmap(res))

	// 7. The full 3-D temperature volume (the paper's "3D partial
	// differential equation"), solved on the grid.
	res, err = rt.Submit("SELECT isosurface(temp) FROM sensors")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[isosurface] 3-D solve %dx%dx%d: model=%s peak=%.0f°C (%d iters, residual %.2g)\n\n",
		res.Field3D.Nx, res.Field3D.Ny, res.Field3D.Nz, res.Model, res.Value, res.Solve.Iterations, res.Solve.Residual)

	// 8. Which grid resource runs the next solve? Negotiated by
	// contract net rather than dictated by the scheduler.
	platform := agent.NewPlatform("firefighting")
	defer platform.Close()
	if err := rt.RegisterSolverAgents(platform); err != nil {
		log.Fatal(err)
	}
	placement, winner, err := rt.NegotiateSolve(platform, 1e10, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[negotiation] contract net awarded the 1e10-op solve to %s (committed finish: %.3gs)\n\n",
		winner, placement.Finish)

	// 9. Continuous: watch the fire room while the crew moves in.
	res, err = rt.Submit("SELECT max(temp) FROM sensors WHERE room = 'r8' EPOCH DURATION 15")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("[continuous] max temp in r8, one reading per 15 s epoch (fire spreading):")
	for _, r := range res.Rounds {
		fmt.Printf("  t=%5.1fs  max=%.0f°C  (round energy %.3g J)\n", r.Time, r.Value, r.EnergyJ)
	}
}

func run(rt *core.Runtime, label, src string) {
	res, err := rt.Submit(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%s] %s\n", res.Kind, label)
	fmt.Printf("  %s\n", src)
	fmt.Printf("  -> %.1f  (model=%s, %d sensors, %.3g J, %.3g s)\n\n",
		res.Value, res.Model, res.Coverage, res.EnergyJ, res.TimeSec)
}

// heatmap renders the solved field as ASCII, base station at the bottom.
func heatmap(res *core.Result) string {
	g := res.Field
	shades := " .:-=+*#%@"
	var b strings.Builder
	step := g.Ny / 16
	if step < 1 {
		step = 1
	}
	for y := g.Ny - 1; y >= 0; y -= step {
		b.WriteString("  ")
		for x := 0; x < g.Nx; x += step {
			v := (g.At(x, y) - 20) / (res.Value - 20 + 1e-9)
			idx := int(v * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
