// Battlefield reproduces the paper's defense scenario: "a central command
// and control station, airborne vehicles and sensors (AWACS, drones),
// ground-based wireless integrated network sensors ... and war fighters on
// the ground". It exercises the pieces the scenario demands: semantic
// discovery with geographic constraints, short-lived mobile services
// (drones on station for minutes), fault-tolerant composition that rebinds
// around destroyed services, and disconnection-managed delivery to a war
// fighter who drops off the network.
package main

import (
	"fmt"
	"log"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/ontology"
)

func main() {
	fmt.Println("=== Battlefield awareness on the pervasive grid ===")
	fmt.Println()
	o := ontology.Pervasive()

	// Virtual battlefield clock driving service leases.
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }

	// Two brokers: one at main command, one forward-deployed.
	command := discovery.NewBroker("command-post", discovery.NewSemanticMatcher(o))
	forward := discovery.NewBroker("forward-base", discovery.NewSemanticMatcher(o))
	command.Reg.Now, forward.Reg.Now = clock, clock
	command.Peer(forward, true)

	// Long-standing services at command; short-lived drones forward.
	register := func(b *discovery.Broker, p *ontology.Profile, ttl time.Duration) {
		if _, err := b.Reg.Register(p, ttl); err != nil {
			log.Fatal(err)
		}
	}
	register(command, &ontology.Profile{
		Name: "awacs-1", Concept: "RadarSensor",
		Properties: map[string]ontology.Value{"x": ontology.Num(10), "y": ontology.Num(10), "altitude": ontology.Num(9000)},
	}, time.Hour)
	register(command, &ontology.Profile{
		Name: "intel-db", Concept: "IntelligenceReports",
	}, time.Hour)
	register(command, &ontology.Profile{
		Name: "weather-svc", Concept: "WeatherData",
	}, time.Hour)
	register(command, &ontology.Profile{
		Name: "hq-analytics", Concept: "DataMiningService",
	}, time.Hour)
	register(command, &ontology.Profile{
		Name: "hq-treeminer", Concept: "DecisionTreeService",
	}, time.Hour)
	register(command, &ontology.Profile{
		Name: "hq-spectra", Concept: "FourierSpectrumService",
	}, time.Hour)
	// Drones: 5 minutes on station.
	for i := 0; i < 3; i++ {
		register(forward, &ontology.Profile{
			Name: fmt.Sprintf("drone-%d", i), Concept: "AcousticSensor",
			Properties: map[string]ontology.Value{
				"x": ontology.Num(60 + float64(i)*5), "y": ontology.Num(40),
				"fuel": ontology.Num(0.4 + 0.2*float64(i)),
			},
		}, 5*time.Minute)
	}

	// 1. The war fighter asks: what sensors cover my neighborhood?
	fmt.Println("[war fighter] sensors within 20 km of position (62,38):")
	hits := forward.Lookup(ontology.Request{
		Concept: "SensorService",
		X:       62, Y: 38, HasLoc: true,
		Constraints: []ontology.Constraint{{Op: ontology.OpNear, Value: ontology.Num(20)}},
		PreferLow:   []string{"fuel"},
	}, 0)
	for _, m := range hits {
		fmt.Printf("  %-10s (%s) score=%.2f\n", m.Profile.Name, m.Profile.Concept, m.Score)
	}
	fmt.Println()

	// 2. Federated lookup: the forward base has no radar; the request
	// fans out to the command post's broker.
	fmt.Println("[forward base] need radar coverage — local miss, federated hit:")
	radarReq := ontology.Request{Concept: "RadarSensor"}
	localBest := "none"
	if local := forward.LookupLocal(radarReq); len(local) > 0 {
		localBest = fmt.Sprintf("%s (weak score %.2f)", local[0].Profile.Name, local[0].Score)
	}
	fed := forward.Lookup(radarReq, 5)
	fmt.Printf("  best local candidate: %s\n", localBest)
	fmt.Printf("  after fan-out to command post: %s (score %.2f)\n\n", fed[0].Profile.Name, fed[0].Score)

	// 3. Mission analytics pipeline with battle damage: the first
	// invocation of hq-treeminer fails (jammed); the engine rebinds.
	lib := composition.StreamMiningLibrary()
	plan, err := lib.Plan("mine-stream")
	if err != nil {
		log.Fatal(err)
	}
	register(command, &ontology.Profile{
		Name: "backup-treeminer", Concept: "DecisionTreeService",
	}, time.Hour)
	jammed := map[string]bool{"hq-treeminer": true}
	engine := &composition.Engine{
		Brokers: []*discovery.Broker{forward, command}, Onto: o,
		Mode: composition.Distributed, MaxAttempts: 3,
		Invoke: func(p *ontology.Profile, s composition.Step) error {
			if jammed[p.Name] {
				return fmt.Errorf("%s jammed", p.Name)
			}
			return nil
		},
	}
	exec := engine.Execute(plan)
	fmt.Printf("[composition] situation-analysis pipeline: succeeded=%v rebinds=%d\n", exec.Succeeded, exec.Rebinds())
	for _, s := range exec.Steps {
		fmt.Printf("  %-16s -> %-18s attempts=%d\n", s.Task, s.Service, s.Attempts)
	}
	fmt.Println()

	// 4. Time passes; the drones' leases expire and disappear from
	// discovery — the short-lived-service behaviour.
	now = now.Add(10 * time.Minute)
	gone := forward.LookupLocal(ontology.Request{Concept: "AcousticSensor"})
	fmt.Printf("[leases] after 10 minutes, drones on station: %d (they disappeared with their leases)\n\n", len(gone))

	// 5. Disconnection management: envelopes to a war fighter in a dead
	// zone are buffered by the deputy and flushed on reconnect.
	platform := agent.NewPlatform("battlefield")
	defer platform.Close()
	received := make(chan string, 16)
	var deputy *agent.DisconnectionDeputy
	err = platform.Register("warfighter-7", agent.HandlerFunc(func(env agent.Envelope, ctx *agent.Context) {
		var msg string
		if env.Decode(&msg) == nil {
			received <- msg
		}
	}), agent.Attributes{Agent: map[string]string{agent.AttrRole: agent.RoleClient}},
		func(next agent.Deputy) agent.Deputy {
			deputy = agent.NewDisconnectionDeputy(next)
			return deputy
		})
	if err != nil {
		log.Fatal(err)
	}

	deputy.SetConnected(false)
	fmt.Println("[deputy] war fighter enters a dead zone; command keeps sending:")
	for _, msg := range []string{"enemy armor sighted grid 62-40", "fall back to rally point B", "air support on station"} {
		env, err := agent.NewEnvelope("command", "warfighter-7", "inform", "mission-v1", msg)
		if err != nil {
			log.Fatal(err)
		}
		if err := platform.Send(env); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  buffered while disconnected: %d envelopes\n", deputy.Buffered())
	flushed := deputy.SetConnected(true)
	fmt.Printf("  reconnected: %d envelopes flushed in order:\n", flushed)
	for i := 0; i < flushed; i++ {
		fmt.Printf("    %q\n", <-received)
	}
}
