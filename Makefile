GO ?= go

# Total-statement coverage must not regress below the seed baseline
# (85% at the time the observability layer landed).
COVER_FLOOR ?= 84.0

.PHONY: build test race vet fmt-check lint lint-baseline cover check bench bench-baseline benchcmp experiments load-smoke e18-smoke

# Generous wall-time ceiling for the whole lint run (call-graph build +
# fixed point over every package). Today's run is well under a second;
# blowing past this means the engine has regressed algorithmically.
LINT_TIME_BUDGET ?= 90s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "FAIL: not gofmt-clean:"; echo "$$files"; exit 1; \
	fi

# lint runs the project's own invariant analyzers (see
# docs/static-analysis.md) — per-package rules (rawclock, rawsend,
# lockeddeliver, goroleak, envhops, ...) plus the interprocedural set
# (lockorder, blockheld, hotalloc). Findings already recorded in
# lint-baseline.json are excused (burn them down over time); any NEW
# finding fails. Prints the lint wall time and fails past the budget.
# Exit 1 = new findings, exit 2 = the linter could not run or was slow.
lint:
	$(GO) run ./cmd/pgridlint -baseline lint-baseline.json -time-budget $(LINT_TIME_BUDGET) ./...

# lint-baseline re-accepts every current finding into lint-baseline.json.
# Run it only when deliberately landing an analyzer ahead of the cleanup;
# review the diff — it should only ever shrink, or grow with a reason.
lint-baseline:
	$(GO) run ./cmd/pgridlint -write-baseline lint-baseline.json ./...

# internal/experiments runs ~9 minutes under the race detector (E9 PDE
# scaling dominates), right at go test's default 10m package timeout —
# give it explicit headroom so a loaded machine doesn't flake the gate.
race:
	$(GO) test -race -count=1 -timeout 30m ./...

# cover enforces the repository-wide statement coverage floor.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/,"",$$3); print $$3}'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# The verification gate: static analysis, the full suite under the race
# detector, the coverage floor, the end-to-end scenario smoke, and (when
# a fresh bench capture exists) the benchmark-regression gate. The agent
# platform, transports, and solvers must stay race-clean.
check: vet fmt-check lint race cover load-smoke e18-smoke benchcmp

# load-smoke runs both disaster scenarios end to end (real TCP, open-loop
# load) at rates any CI box sustains, and fails unless the priority lane
# stayed spotless: zero dead letters, ≥99% control-plane delivery, and —
# at smoke rates — zero sheds in the storm. See docs/load-testing.md.
load-smoke:
	$(GO) run ./cmd/pgridload -scenario storm -smoke
	$(GO) run ./cmd/pgridload -scenario flood -smoke

# e18-smoke regenerates the adaptive re-composition table end to end:
# providers die mid-plan (crash-loop and partition) and the adaptive
# executor must finish the conversations the static engine abandons.
e18-smoke:
	$(GO) run ./cmd/pgridbench -only E18

# experiments regenerates every E1–E18 table into results.txt (a build
# output, not a tracked file).
experiments:
	$(GO) run ./cmd/pgridbench -o results.txt
	@echo "wrote results.txt"

# bench runs the hot-path micro-benchmarks (delivery, discovery match,
# envelope codec, ...) once each, then re-runs the regression-gated
# Deliver/Route/WAL/Replan set best-of-3 at a fixed iteration count (single
# iterations of microsecond benchmarks are too noisy to gate on).
# Records everything as test2json events in BENCH_new.json for benchcmp.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -json ./... > BENCH_new.json
	$(GO) test -run '^$$' -bench='Deliver|Route|WAL|Replan' -benchtime=5000x -count=3 -json . >> BENCH_new.json
	@grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' BENCH_new.json | sed 's/"Output":"//; s/\\n"$$//; s/\\t/\t/g' || true
	@echo "wrote BENCH_new.json"

# bench-baseline refreshes the tracked baseline capture with the same
# recipe. Run it on a quiet machine when a deliberate perf change moves
# the hot paths.
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -json ./... > BENCH_obs.json
	$(GO) test -run '^$$' -bench='Deliver|Route|WAL|Replan' -benchtime=5000x -count=3 -json . >> BENCH_obs.json
	@echo "wrote BENCH_obs.json (tracked baseline)"

# benchcmp fails on a >20% ns/op regression of the Deliver/Route/WAL/Replan
# benchmarks relative to the tracked baseline. Skips quietly when no
# fresh capture exists (run `make bench` first to arm it).
benchcmp:
	@if [ -f BENCH_new.json ]; then \
		$(GO) run ./cmd/pgridbench -compare BENCH_obs.json BENCH_new.json; \
	else \
		echo "benchcmp: no BENCH_new.json (run 'make bench' to arm the regression gate); skipping"; \
	fi
