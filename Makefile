GO ?= go

# Total-statement coverage must not regress below the seed baseline
# (85% at the time the observability layer landed).
COVER_FLOOR ?= 84.0

.PHONY: build test race vet cover check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -count=1 ./...

# cover enforces the repository-wide statement coverage floor.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/,"",$$3); print $$3}'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# The verification gate: static analysis, the full suite under the race
# detector, and the coverage floor. The agent platform, transports, and
# solvers must stay race-clean.
check: vet race cover

# bench regenerates every experiment table plus the instrumented
# hot-path micro-benchmarks (delivery, discovery match, envelope codec)
# once each, recording the run as test2json events in BENCH_obs.json.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -json ./... > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' BENCH_obs.json | sed 's/"Output":"//; s/\\n"$$//; s/\\t/\t/g' || true
	@echo "wrote BENCH_obs.json"
