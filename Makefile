GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The verification gate: static analysis plus the full suite under the
# race detector. The agent platform, transports, and solvers must stay
# race-clean.
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...
