package pervasivegrid_test

// Durability micro-benchmarks: WAL append throughput under the cheapest
// fsync policy (rotate — the interval and always policies measure the
// disk, not the framing), and cold-start recovery replay. `make bench`
// runs these alongside the delivery/routing benchmarks and records them
// in BENCH_obs.json, so a framing or recovery-scan regression shows up
// as a latency delta in the -compare gate.

import (
	"bytes"
	"testing"

	"pervasivegrid/internal/durable"
)

// BenchmarkWALAppend measures one framed append (length prefix + CRC32 +
// payload) without a per-record fsync: the steady-state journaling cost
// a node pays per checkpoint.
func BenchmarkWALAppend(b *testing.B) {
	w, err := durable.OpenWAL(b.TempDir(), 1, durable.Options{
		Sync:         durable.SyncOnRotate,
		SegmentBytes: 64 << 20, // never rotate mid-run
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := bytes.Repeat([]byte("x"), 256)
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALRecover measures a cold boot: open a 512-record segment,
// CRC-check and replay every frame. This is the startup latency a
// crashed node pays before it can rejoin the fleet.
func BenchmarkWALRecover(b *testing.B) {
	dir := b.TempDir()
	w, err := durable.OpenWAL(dir, 1, durable.Options{Sync: durable.SyncOnRotate}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rec := bytes.Repeat([]byte("y"), 256)
	const records = 512
	for i := 0; i < records; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(records * int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayed := 0
		w, err := durable.OpenWAL(dir, 1, durable.Options{Sync: durable.SyncOnRotate}, func(_ uint64, _ []byte) {
			replayed++
		})
		if err != nil {
			b.Fatal(err)
		}
		if replayed != records {
			b.Fatalf("replayed %d of %d records", replayed, records)
		}
		w.Close()
	}
}
