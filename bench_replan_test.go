package pervasivegrid_test

// Hot-path micro-benchmark for adaptive re-composition: one iteration is
// a full adaptive conversation whose second step loses every provider, so
// each Run exercises the re-plan path — ranked-plan selection, handoff
// dataflow validation against the completed prefix, and migration onto
// the degraded alternative. `make bench` gates this together with the
// Deliver/Route/WAL set (see `pgridbench -compare`).

import (
	"fmt"
	"testing"
	"time"

	"pervasivegrid/internal/composition"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/ontology"
)

func BenchmarkReplan(b *testing.B) {
	o := ontology.Pervasive()
	broker := discovery.NewBroker("b0", discovery.NewSemanticMatcher(o))
	for _, c := range []string{"IngestService", "MineService", "ApproxService"} {
		for j := 0; j < 2; j++ {
			p := &ontology.Profile{Name: fmt.Sprintf("%s-%d", c, j), Concept: c}
			if _, err := broker.Reg.Register(p, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	}
	lib := composition.NewLibrary()
	for _, task := range []*composition.Task{
		{Name: "analyse", Subtasks: []string{"ingest", "mine"},
			Alternatives: [][]string{{"ingest", "approx"}}},
		{Name: "ingest", Concept: "IngestService",
			Inputs: []string{"Raw"}, Outputs: []string{"IngestedData"}},
		{Name: "mine", Concept: "MineService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
		{Name: "approx", Concept: "ApproxService",
			Inputs: []string{"IngestedData"}, Outputs: []string{"Result"}},
	} {
		if err := lib.Define(task); err != nil {
			b.Fatal(err)
		}
	}
	// Every MineService invocation fails, so each Run performs exactly one
	// mid-conversation re-plan onto the approx alternative.
	e := &composition.Engine{
		Brokers: []*discovery.Broker{broker},
		Onto:    o,
		Invoke: func(p *ontology.Profile, s composition.Step) error {
			if s.Task.Concept == "MineService" {
				return fmt.Errorf("dead")
			}
			return nil
		},
	}
	a := &composition.Adaptive{Engine: e, Library: lib, Goal: "analyse", Initial: []string{"Raw"}}
	a.Start()
	defer a.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec := a.Run()
		if !exec.Succeeded || exec.Replans != 1 {
			b.Fatalf("run %d: succeeded=%v replans=%d", i, exec.Succeeded, exec.Replans)
		}
	}
}
