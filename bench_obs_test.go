package pervasivegrid_test

// Hot-path micro-benchmarks for the paths the observability layer
// instruments: local envelope delivery, semantic discovery matching, and
// envelope codec round-trips. `make bench` runs these (together with the
// experiment-table benchmarks) and records the output in BENCH_obs.json,
// so instrumentation overhead regressions show up as allocation or
// latency deltas between runs.

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pervasivegrid/internal/agent"
	"pervasivegrid/internal/discovery"
	"pervasivegrid/internal/obs"
	"pervasivegrid/internal/ontology"
)

// BenchmarkPlatformDeliver measures one instrumented local delivery:
// Send through the deputy into the handler, confirmed per iteration so
// the mailbox never saturates.
func BenchmarkPlatformDeliver(b *testing.B) {
	p := agent.NewPlatform("bench")
	defer p.Close()
	done := make(chan struct{}, 1)
	if err := p.Register("sink", agent.HandlerFunc(func(agent.Envelope, *agent.Context) {
		done <- struct{}{}
	}), agent.Attributes{}, nil); err != nil {
		b.Fatal(err)
	}
	env, err := agent.NewEnvelope("bench", "sink", "inform", "b", map[string]float64{"temp": 21.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Send(env); err != nil {
			b.Fatal(err)
		}
		<-done
	}
	b.StopTimer()
	snap := p.MetricsSnapshot()
	if h, ok := snap.Histograms["agent_deliver_latency_seconds"]; ok && h.Count > 0 {
		b.ReportMetric(h.P99*1e9, "p99-ns")
	}
}

// BenchmarkPlatformDeliverTraced is the same path with a tracer attached,
// quantifying the per-envelope cost of span recording.
func BenchmarkPlatformDeliverTraced(b *testing.B) {
	p := agent.NewPlatform("bench")
	p.Tracer = obs.NewTracer(4096)
	defer p.Close()
	done := make(chan struct{}, 1)
	if err := p.Register("sink", agent.HandlerFunc(func(agent.Envelope, *agent.Context) {
		done <- struct{}{}
	}), agent.Attributes{}, nil); err != nil {
		b.Fatal(err)
	}
	env, err := agent.NewEnvelope("bench", "sink", "inform", "b", map[string]float64{"temp": 21.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := env
		e.TraceID = 0 // fresh trace per delivery
		if err := p.Send(e); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// benchDeliverSampled runs the traced-delivery loop with the given
// sampler plus a wide-event log attached — the fully instrumented
// pipeline as pgridd runs it.
func benchDeliverSampled(b *testing.B, smp *obs.Sampler) {
	p := agent.NewPlatform("bench")
	p.Tracer = obs.NewTracer(4096)
	p.Tracer.SetSampler(smp)
	p.Events = obs.NewEventLog(1024)
	defer p.Close()
	done := make(chan struct{}, 1)
	if err := p.Register("sink", agent.HandlerFunc(func(agent.Envelope, *agent.Context) {
		done <- struct{}{}
	}), agent.Attributes{}, nil); err != nil {
		b.Fatal(err)
	}
	env, err := agent.NewEnvelope("bench", "sink", "inform", "b", map[string]float64{"temp": 21.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := env
		e.TraceID = 0 // fresh trace per delivery
		if err := p.Send(e); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// BenchmarkPlatformDeliverSampled is the instrumented Deliver path at the
// production sampling rate (1%): spans head-sampled by TraceID hash,
// wide-event log attached. pgridbench -compare gates this against
// BenchmarkPlatformDeliverSamplerOff with the ≤10% overhead budget.
func BenchmarkPlatformDeliverSampled(b *testing.B) {
	benchDeliverSampled(b, obs.NewSampler(0.01))
}

// BenchmarkPlatformDeliverSamplerOff is the overhead baseline: the same
// wiring with sampling off (complete span blackout, cheapest possible
// Record path), isolating what 1% sampling itself costs.
func BenchmarkPlatformDeliverSamplerOff(b *testing.B) {
	benchDeliverSampled(b, obs.SamplerOff)
}

// BenchmarkDiscoveryMatch measures one semantic lookup against a
// 500-profile registry — the paper's discovery hot path.
func BenchmarkDiscoveryMatch(b *testing.B) {
	o := ontology.Pervasive()
	m := discovery.NewSemanticMatcher(o)
	r := discovery.NewRegistry()
	for i := 0; i < 500; i++ {
		concept := "PrinterService"
		if i%3 == 0 {
			concept = "ColorPrinter"
		}
		p := &ontology.Profile{
			Name: fmt.Sprintf("svc-%d", i), Concept: concept,
			Interface: "Printer.printIt", UUID: fmt.Sprintf("uuid-%d", i),
			Properties: map[string]ontology.Value{
				"queue": ontology.Num(float64(i % 10)),
				"cost":  ontology.Num(0.01 * float64(i%12)),
				"color": ontology.Str("yes"),
				"x":     ontology.Num(float64(i % 100)),
				"y":     ontology.Num(float64(i % 80)),
			},
		}
		if _, err := r.Register(p, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	req := ontology.Request{
		Concept: "ColorPrinter",
		Constraints: []ontology.Constraint{
			{Property: "color", Op: ontology.OpEq, Value: ontology.Str("yes")},
			{Property: "cost", Op: ontology.OpLe, Value: ontology.Num(0.10)},
		},
		PreferLow: []string{"queue"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Lookup(m, req); len(got) == 0 {
			b.Fatal("lookup found nothing")
		}
	}
}

// BenchmarkEnvelopeCodec measures a full wire round-trip of one envelope:
// JSON framing as the TCP transport sends it, then decode plus body
// extraction on the receiving side.
func BenchmarkEnvelopeCodec(b *testing.B) {
	env, err := agent.NewEnvelope("handheld", "query-agent", "request", "pgrid-query-v1",
		map[string]string{"query": "SELECT temp FROM sensors WHERE sensor = 44"})
	if err != nil {
		b.Fatal(err)
	}
	env.TraceID = obs.NewTraceID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := json.Marshal(env)
		if err != nil {
			b.Fatal(err)
		}
		var out agent.Envelope
		if err := json.Unmarshal(wire, &out); err != nil {
			b.Fatal(err)
		}
		var body map[string]string
		if err := out.Decode(&body); err != nil {
			b.Fatal(err)
		}
		if out.TraceID != env.TraceID {
			b.Fatal("trace id lost on the wire")
		}
	}
}
