package pervasivegrid_test

// One benchmark per experiment in the reproduction suite (DESIGN.md
// experiment index). Each iteration regenerates the experiment's full
// table, so `go test -bench=.` reproduces every figure/table of
// EXPERIMENTS.md and reports how long each costs. Custom metrics surface
// each experiment's headline number so regressions in the *shape* of a
// result (not just its runtime) are visible in benchmark output.

import (
	"strconv"
	"strings"
	"testing"

	"pervasivegrid/internal/experiments"
)

// runTable drives one experiment under the benchmark loop and returns the
// final table for metric extraction.
func runTable(b *testing.B, run func() (*experiments.Table, error)) *experiments.Table {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	return last
}

// metric parses a numeric cell (tolerating % and x suffixes).
func metric(b *testing.B, tb *experiments.Table, match func([]string) bool, col string) float64 {
	b.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		b.Fatalf("column %q missing", col)
	}
	for _, row := range tb.Rows {
		if match(row) {
			s := strings.TrimSuffix(strings.TrimSuffix(row[ci], "%"), "x")
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				b.Fatalf("parse %q: %v", row[ci], err)
			}
			return v
		}
	}
	b.Fatal("no matching row")
	return 0
}

// BenchmarkFigure1Scenario regenerates E1: the burning-building scenario
// with all four query types end-to-end.
func BenchmarkFigure1Scenario(b *testing.B) {
	tb := runTable(b, experiments.E1Figure1)
	v := metric(b, tb, func(r []string) bool { return r[0] == "simple" }, "value")
	b.ReportMetric(v, "near-fire-°C")
}

// BenchmarkSolutionModels regenerates E2: energy/latency of the four
// solution models across network sizes.
func BenchmarkSolutionModels(b *testing.B) {
	tb := runTable(b, experiments.E2SolutionModels)
	direct := metric(b, tb, func(r []string) bool { return r[0] == "400" && r[1] == "direct" }, "energy(J)")
	tree := metric(b, tb, func(r []string) bool { return r[0] == "400" && r[1] == "tree" }, "energy(J)")
	b.ReportMetric(direct/tree, "direct/tree-energy@400")
}

// BenchmarkNetworkLifetime regenerates E3: rounds until first node death
// per collection strategy.
func BenchmarkNetworkLifetime(b *testing.B) {
	tb := runTable(b, experiments.E3NetworkLifetime)
	tree := metric(b, tb, func(r []string) bool { return r[0] == "tree" }, "rounds to first death")
	direct := metric(b, tb, func(r []string) bool { return r[0] == "direct" }, "rounds to first death")
	b.ReportMetric(tree/direct, "tree/direct-lifetime")
}

// BenchmarkComplexQueryCrossover regenerates E4: base-station vs grid
// response time across PDE sizes.
func BenchmarkComplexQueryCrossover(b *testing.B) {
	tb := runTable(b, experiments.E4ComplexCrossover)
	base := metric(b, tb, func(r []string) bool { return r[0] == "129x129" }, "base time(s)")
	grid := metric(b, tb, func(r []string) bool { return r[0] == "129x129" }, "grid time(s)")
	b.ReportMetric(base/grid, "base/grid-time@129")
}

// BenchmarkDecisionMaker regenerates E5: learned selection vs oracle and
// static policies.
func BenchmarkDecisionMaker(b *testing.B) {
	tb := runTable(b, experiments.E5DecisionMaker)
	learned := metric(b, tb, func(r []string) bool { return r[0] == "learned k-NN (300 obs)" }, "oracle agreement")
	b.ReportMetric(learned, "learned-agreement-%")
}

// BenchmarkDiscovery regenerates E6: semantic vs Jini vs SDP matching.
func BenchmarkDiscovery(b *testing.B) {
	tb := runTable(b, experiments.E6Discovery)
	sem := metric(b, tb, func(r []string) bool { return r[0] == "2000" && r[1] == "semantic" }, "recall")
	jini := metric(b, tb, func(r []string) bool { return r[0] == "2000" && r[1] == "jini" }, "precision")
	b.ReportMetric(sem, "semantic-recall-%@2000")
	b.ReportMetric(jini, "jini-precision-%@2000")
}

// BenchmarkCompositionFaultTolerance regenerates E7: success rate under
// failure injection, with and without re-binding.
func BenchmarkCompositionFaultTolerance(b *testing.B) {
	tb := runTable(b, experiments.E7CompositionFaults)
	rebind := metric(b, tb, func(r []string) bool { return r[0] == "0.2" && r[1] == "rebind(4)" }, "success")
	naive := metric(b, tb, func(r []string) bool { return r[0] == "0.2" && r[1] == "no-retry" }, "success")
	b.ReportMetric(rebind, "rebind-success-%@p0.2")
	b.ReportMetric(naive, "noretry-success-%@p0.2")
}

// BenchmarkDynamicComposition regenerates E8: availability vs service
// lifetime, reactive vs proactive.
func BenchmarkDynamicComposition(b *testing.B) {
	tb := runTable(b, experiments.E8DynamicComposition)
	short := metric(b, tb, func(r []string) bool { return r[0] == "2" && r[1] == "reactive" }, "success")
	long := metric(b, tb, func(r []string) bool { return r[0] == "60" && r[1] == "reactive" }, "success")
	b.ReportMetric(long-short, "availability-cliff-%pts")
}

// BenchmarkPDESolver regenerates E9: solver iteration counts and parallel
// timing on the grid substrate.
func BenchmarkPDESolver(b *testing.B) {
	tb := runTable(b, experiments.E9PDEScaling)
	jac := metric(b, tb, func(r []string) bool { return r[0] == "129x129" && r[1] == "jacobi" && r[2] == "1" }, "iters")
	sor := metric(b, tb, func(r []string) bool { return r[0] == "129x129" && r[1] == "sor" && r[2] == "1" }, "iters")
	b.ReportMetric(jac/sor, "jacobi/sor-iters@129")
}

// BenchmarkStreamMining regenerates E10: Fourier-ensemble accuracy and
// communication savings vs centralisation.
func BenchmarkStreamMining(b *testing.B) {
	tb := runTable(b, experiments.E10StreamMining)
	acc := metric(b, tb, func(r []string) bool { return r[0] == "16" }, "ensemble acc")
	save := metric(b, tb, func(r []string) bool { return r[0] == "16" }, "saving")
	b.ReportMetric(acc, "ensemble-acc-%@k16")
	b.ReportMetric(save, "comm-saving-x@k16")
}

// BenchmarkQueryCaching regenerates E11: reactive vs continuous vs cached
// service of a high-frequency query.
func BenchmarkQueryCaching(b *testing.B) {
	tb := runTable(b, experiments.E11Caching)
	reactive := metric(b, tb, func(r []string) bool { return strings.HasPrefix(r[0], "reactive") }, "energy(J)")
	cached := metric(b, tb, func(r []string) bool { return strings.HasPrefix(r[0], "cached") }, "energy(J)")
	b.ReportMetric(reactive/cached, "reactive/cached-energy")
}
